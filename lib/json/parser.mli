(** Recursive-descent JSON parser producing {!Value.t} trees.

    RFC 8259 compliant: any value may appear at the top level, strings are
    unescaped, numbers follow the strict grammar. Behaviour knobs that real
    deployments disagree on — duplicate keys, nesting limits, trailing
    garbage — are explicit {!options}. *)

type dup_policy =
  | Keep_first   (** ignore later bindings of a repeated key *)
  | Keep_last    (** later bindings win (JavaScript semantics, default) *)
  | Reject       (** duplicate key is a parse error *)
  | Keep_all     (** preserve every binding in document order *)

type options = {
  dup_keys : dup_policy;
  max_depth : int;        (** nesting limit to bound stack use *)
  allow_trailing : bool;  (** permit trailing input after the value *)
  max_doc_bytes : int option;
      (** cap on the byte span one document may occupy *)
  max_nodes : int option;
      (** cap on the number of JSON nodes (scalars + containers) per doc *)
  max_string_bytes : int option;
      (** cap on the unescaped length of any one string literal *)
}

val default_options : options
(** [Keep_last], depth 512, no trailing input, no byte/node/string budgets. *)

(** Which resource budget a document blew. [Documents_exceeded] is never
    produced by the parser itself — it is the document-count cap enforced by
    the ingestion layer ({!Core.Resilient}), declared here so every budget
    failure shares one type. *)
type budget_violation =
  | Depth_exceeded
  | Bytes_exceeded
  | Nodes_exceeded
  | String_exceeded
  | Documents_exceeded

type error_kind =
  | Syntax                                (** malformed JSON *)
  | Budget_exceeded of budget_violation   (** well-formed but over a cap *)

type error = { position : Lexer.position; message : string; kind : error_kind }

val violation_name : budget_violation -> string
(** Short flag-style name ("max-depth", "max-bytes", ...) for reports. *)

val is_budget_error : error -> bool

val string_of_error : error -> string

val parse :
  ?options:options -> ?telemetry:Telemetry.sink -> string ->
  (Value.t, error) result
(** Parse one JSON document from a string. [telemetry] (default
    {!Telemetry.nop}) receives per-document counters and histograms:
    [parse.docs] / [parse.bytes] / [parse.nodes], size distributions
    [parse.doc_bytes] / [parse.doc_nodes], budget-headroom histograms when
    the corresponding cap is set, and error counters keyed by
    {!error_kind} ([parse.errors.syntax], [parse.errors.budget.<cap>]). *)

val parse_exn : ?options:options -> string -> Value.t
(** @raise Failure with a formatted message on error. *)

val parse_many :
  ?options:options -> ?telemetry:Telemetry.sink -> string ->
  (Value.t list, error) result
(** Parse a whitespace/newline-separated stream of documents (NDJSON and
    concatenated JSON both work). Telemetry as for {!parse}, one
    observation per document. *)

val parse_substring :
  ?options:options -> ?telemetry:Telemetry.sink -> string -> pos:int ->
  (Value.t * int, error) result
(** Parse one value starting at byte [pos]; returns the value and the offset
    one past its last byte. Used by the lazy/speculative parsers. *)

(** {1 Building blocks for alternative executors}

    The streaming engines ({!Inference.Streaming},
    [Jsonschema.Compile.run_stream]) re-implement the token walk but must
    fail, account, and report {e exactly} like this parser. These exports
    let them share the authoritative pieces instead of copying them. *)

val fail : ?kind:error_kind -> Lexer.position -> string -> 'a
(** Raise the parser's own error exception; callers recover it via {!run}. *)

val apply_dup_policy :
  dup_policy -> (string * 'a) list -> Lexer.position -> (string * 'a) list
(** Resolve repeated keys in a field list given in {e reverse} document
    order; the position is where a [Reject] error is reported (the closing
    brace). Polymorphic in the payload so token-level engines can apply the
    same semantics to types instead of values. *)

val run : Lexer.t -> (unit -> 'a) -> ('a, error) result
(** Run a parsing thunk, mapping lexer and parser exceptions (including
    [Stack_overflow]) to this module's {!error} exactly as the built-in
    entry points do. *)

val emit_doc : Telemetry.sink -> options -> bytes:int -> nodes:int -> unit
(** Emit the per-document success telemetry described at {!parse}. *)

val emit_error : Telemetry.sink -> error -> unit
(** Emit the per-document error counter described at {!parse}. *)
