(** RFC 6901 JSON Pointers.

    Pointers are the error-location and [$ref] addressing mechanism used by
    {!module:Jsonschema}; they also serve as stable field identifiers in the
    inference statistics. *)

type token =
  | Key of string   (** object member name *)
  | Index of int    (** array position *)

type t = token list
(** Root is [[]]. *)

val parse : string -> (t, string) result
(** Parse the string form, e.g. ["/foo/0/bar"]. Handles [~0]/[~1] escapes.
    Numeric tokens are returned as [Index]; resolution against objects
    falls back to the literal key. A canonical index literal (digits, no
    leading zero) whose value does not fit in [int] is an error — it can
    only mean an array position, and silently treating it as a member name
    would dereference the wrong way. *)

val parse_exn : string -> t
val to_string : t -> string
(** Inverse of {!parse} (indices print as decimal). *)

val append : t -> token -> t
val get : t -> Value.t -> Value.t option
(** Resolve against a document. A numeric token selects an array element or
    an object member whose name is the decimal literal. *)

val get_exn : t -> Value.t -> Value.t
(** @raise Not_found when the pointer does not resolve. *)

val set : t -> Value.t -> Value.t -> (Value.t, string) result
(** [set ptr replacement doc] replaces the pointed-at value. Appending to an
    array is expressed with an [Index] equal to the length, or the RFC's
    ["-"] token (parsed as [Key "-"]). *)

val exists : t -> Value.t -> bool
val pp : Format.formatter -> t -> unit
