type token = Key of string | Index of int
type t = token list

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '~' then
      if i + 1 >= n then Error "dangling '~' in pointer token"
      else
        match s.[i + 1] with
        | '0' -> Buffer.add_char buf '~'; go (i + 2)
        | '1' -> Buffer.add_char buf '/'; go (i + 2)
        | c -> Error (Printf.sprintf "invalid escape '~%c'" c)
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '~' -> Buffer.add_string buf "~0"
      | '/' -> Buffer.add_string buf "~1"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let classify s =
  (* RFC array index: 0, or nonzero digits with no leading zero. *)
  let is_index =
    String.length s > 0
    && String.for_all (fun c -> c >= '0' && c <= '9') s
    && (String.length s = 1 || s.[0] <> '0')
  in
  if is_index then
    match int_of_string_opt s with
    | Some i -> Ok (Index i)
    | None ->
        (* A canonical index literal too large for [int] used to demote
           silently to [Key s] — and then dereference arrays the wrong way
           (string member lookup instead of out-of-bounds). The token is
           unambiguously an array index per RFC 6901, so refuse it rather
           than misread it. *)
        Error (Printf.sprintf "array index %s exceeds the supported range" s)
  else Ok (Key s)

let parse str =
  if String.equal str "" then Ok []
  else if str.[0] <> '/' then Error "pointer must start with '/' or be empty"
  else
    let parts = String.split_on_char '/' (String.sub str 1 (String.length str - 1)) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match unescape p with
          | Ok s -> (
              match classify s with
              | Ok tok -> go (tok :: acc) rest
              | Error _ as e -> e)
          | Error _ as e -> e)
    in
    go [] parts

let parse_exn str =
  match parse str with Ok t -> t | Error msg -> invalid_arg ("Json.Pointer.parse: " ^ msg)

let token_to_string = function
  | Key k -> escape k
  | Index i -> string_of_int i

let to_string t = String.concat "" (List.map (fun tok -> "/" ^ token_to_string tok) t)
let append t tok = t @ [ tok ]

let rec get t v =
  match (t, v) with
  | [], _ -> Some v
  | Key k :: rest, Value.Object fields -> (
      match List.assoc_opt k fields with Some x -> get rest x | None -> None)
  | Index i :: rest, Value.Object fields -> (
      (* a numeric token may still name an object member *)
      match List.assoc_opt (string_of_int i) fields with
      | Some x -> get rest x
      | None -> None)
  | Index i :: rest, Value.Array vs ->
      if i >= 0 && i < List.length vs then get rest (List.nth vs i) else None
  | Key _ :: _, (Value.Null | Value.Bool _ | Value.Int _ | Value.Float _
                | Value.String _ | Value.Array _) ->
      None
  | Index _ :: _, (Value.Null | Value.Bool _ | Value.Int _ | Value.Float _
                  | Value.String _) ->
      None

let get_exn t v = match get t v with Some x -> x | None -> raise Not_found
let exists t v = get t v <> None

let rec set t replacement v =
  match (t, v) with
  | [], _ -> Ok replacement
  | Key "-" :: [], Value.Array vs -> Ok (Value.Array (vs @ [ replacement ]))
  | Key k :: rest, Value.Object fields ->
      if List.mem_assoc k fields then
        let rec update = function
          | [] -> Ok []
          | (k', x) :: tail when String.equal k k' -> (
              match set rest replacement x with
              | Ok x' -> Ok ((k', x') :: tail)
              | Error _ as e -> e)
          | pair :: tail -> (
              match update tail with
              | Ok tail' -> Ok (pair :: tail')
              | Error _ as e -> e)
        in
        (match update fields with
         | Ok fields' -> Ok (Value.Object fields')
         | Error _ as e -> e)
      else if rest = [] then Ok (Value.Object (fields @ [ (k, replacement) ]))
      else Error (Printf.sprintf "no member %S to descend into" k)
  | Index i :: rest, Value.Array vs ->
      let n = List.length vs in
      if i = n && rest = [] then Ok (Value.Array (vs @ [ replacement ]))
      else if i < 0 || i >= n then Error (Printf.sprintf "index %d out of bounds" i)
      else
        let res =
          List.mapi
            (fun j x -> if j = i then set rest replacement x else Ok x)
            vs
        in
        let rec collect acc = function
          | [] -> Ok (Value.Array (List.rev acc))
          | Ok x :: tail -> collect (x :: acc) tail
          | (Error _ as e) :: _ -> e
        in
        collect [] res
  | Index i :: rest, Value.Object fields ->
      set (Key (string_of_int i) :: rest) replacement (Value.Object fields)
  | tok :: _, _ ->
      Error
        (Printf.sprintf "cannot traverse %s with token %S"
           (Value.kind_name (Value.kind v))
           (token_to_string tok))

let pp ppf t = Format.pp_print_string ppf (to_string t)
