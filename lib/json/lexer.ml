type position = { offset : int; line : int; column : int }

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | True
  | False
  | Null_tok
  | String_tok of string
  | Number_tok of Number.parsed

  | Eof

exception Lex_error of position * string
exception Limit_error of position * string

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
  mutable lookahead : (token * position) option;
  mutable buf : Buffer.t option; (* scratch for string unescaping, created on
                                    first materialized string — a skimming
                                    lex never needs it *)
  max_string_bytes : int option;
  (* Latched by [skim] so hot loops can read token metadata without a
     position record or tuple being allocated per token. *)
  mutable tok_start : int; (* byte offset where the last skimmed token starts *)
  mutable str_start : int; (* contents start (past the quote) of the last string *)
  mutable str_stop : int; (* offset of that string's closing quote *)
  mutable str_escaped : bool; (* the span contains backslash escapes *)
}

let create ?(pos = 0) ?max_string_bytes src =
  { src; pos; line = 1; bol = pos; lookahead = None; buf = None;
    max_string_bytes; tok_start = pos; str_start = 0; str_stop = 0;
    str_escaped = false }

let get_buf lx =
  match lx.buf with
  | Some b -> b
  | None ->
      let b = Buffer.create 64 in
      lx.buf <- Some b;
      b

let position_at lx off = { offset = off; line = lx.line; column = off - lx.bol + 1 }
let position lx = position_at lx lx.pos
let offset lx = lx.pos

let error lx off msg = raise (Lex_error (position_at lx off, msg))

let token_name = function
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Colon -> "':'"
  | Comma -> "','"
  | True -> "'true'"
  | False -> "'false'"
  | Null_tok -> "'null'"
  | String_tok _ -> "string"
  | Number_tok _ -> "number"
  | Eof -> "end of input"

let is_digit c = c >= '0' && c <= '9'

let skip_ws lx =
  let n = String.length lx.src in
  let rec go () =
    if lx.pos < n then
      match lx.src.[lx.pos] with
      | ' ' | '\t' | '\r' -> lx.pos <- lx.pos + 1; go ()
      | '\n' ->
          lx.pos <- lx.pos + 1;
          lx.line <- lx.line + 1;
          lx.bol <- lx.pos;
          go ()
      | _ -> ()
  in
  go ()

let expect_keyword lx word token =
  let n = String.length word in
  let src = lx.src in
  let start = lx.pos in
  let matches =
    start + n <= String.length src
    && (let rec eq i =
          i >= n
          || (String.unsafe_get src (start + i) = String.unsafe_get word i
              && eq (i + 1))
        in
        eq 0)
  in
  if matches then begin
    lx.pos <- start + n;
    token
  end
  else error lx start (Printf.sprintf "expected %s" word)

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let hex_value lx off c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error lx off "invalid hex digit in \\u escape"

let read_hex4 lx =
  let n = String.length lx.src in
  if lx.pos + 4 > n then error lx lx.pos "truncated \\u escape";
  let v =
    (hex_value lx lx.pos lx.src.[lx.pos] lsl 12)
    lor (hex_value lx (lx.pos + 1) lx.src.[lx.pos + 1] lsl 8)
    lor (hex_value lx (lx.pos + 2) lx.src.[lx.pos + 2] lsl 4)
    lor hex_value lx (lx.pos + 3) lx.src.[lx.pos + 3]
  in
  lx.pos <- lx.pos + 4;
  v

let read_string lx =
  let n = String.length lx.src in
  let start = lx.pos in
  lx.pos <- lx.pos + 1; (* opening quote *)
  let buf = get_buf lx in
  Buffer.clear buf;
  let check_budget () =
    match lx.max_string_bytes with
    | Some limit when Buffer.length buf > limit ->
        raise
          (Limit_error
             ( position_at lx start,
               Printf.sprintf "string literal exceeds %d bytes" limit ))
    | _ -> ()
  in
  let rec go () =
    check_budget ();
    if lx.pos >= n then error lx start "unterminated string"
    else
      match lx.src.[lx.pos] with
      | '"' -> lx.pos <- lx.pos + 1
      | '\\' ->
          lx.pos <- lx.pos + 1;
          if lx.pos >= n then error lx start "unterminated string";
          (match lx.src.[lx.pos] with
           | '"' -> Buffer.add_char buf '"'; lx.pos <- lx.pos + 1
           | '\\' -> Buffer.add_char buf '\\'; lx.pos <- lx.pos + 1
           | '/' -> Buffer.add_char buf '/'; lx.pos <- lx.pos + 1
           | 'b' -> Buffer.add_char buf '\b'; lx.pos <- lx.pos + 1
           | 'f' -> Buffer.add_char buf '\012'; lx.pos <- lx.pos + 1
           | 'n' -> Buffer.add_char buf '\n'; lx.pos <- lx.pos + 1
           | 'r' -> Buffer.add_char buf '\r'; lx.pos <- lx.pos + 1
           | 't' -> Buffer.add_char buf '\t'; lx.pos <- lx.pos + 1
           | 'u' ->
               lx.pos <- lx.pos + 1;
               let u = read_hex4 lx in
               if u >= 0xD800 && u <= 0xDBFF then begin
                 (* high surrogate: require a following \uDC00-\uDFFF *)
                 if lx.pos + 2 <= n && lx.src.[lx.pos] = '\\' && lx.src.[lx.pos + 1] = 'u'
                 then begin
                   lx.pos <- lx.pos + 2;
                   let lo = read_hex4 lx in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     add_utf8 buf (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
                   else error lx lx.pos "invalid low surrogate"
                 end
                 else error lx lx.pos "unpaired high surrogate"
               end
               else if u >= 0xDC00 && u <= 0xDFFF then
                 error lx lx.pos "unpaired low surrogate"
               else add_utf8 buf u
           | c -> error lx lx.pos (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
      | c when Char.code c < 0x20 ->
          error lx lx.pos "unescaped control character in string"
      | c ->
          Buffer.add_char buf c;
          lx.pos <- lx.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

(* Validate and skip one string literal without materializing its unescaped
   contents. Mirrors [read_string] check-for-check: the budget is tested at
   the top of every iteration against the *decoded* length accumulated so
   far, and every malformed-input case raises the same error at the same
   position, so a skimming parse fails exactly where a materializing parse
   would. Returns the decoded (unescaped) byte length. *)
let skim_string lx =
  let n = String.length lx.src in
  let start = lx.pos in
  lx.pos <- lx.pos + 1; (* opening quote *)
  lx.str_start <- lx.pos;
  lx.str_escaped <- false;
  let len = ref 0 in
  let check_budget () =
    match lx.max_string_bytes with
    | Some limit when !len > limit ->
        raise
          (Limit_error
             ( position_at lx start,
               Printf.sprintf "string literal exceeds %d bytes" limit ))
    | _ -> ()
  in
  let utf8_width u = if u < 0x80 then 1 else if u < 0x800 then 2 else 3 in
  let rec go () =
    check_budget ();
    if lx.pos >= n then error lx start "unterminated string"
    else
      match lx.src.[lx.pos] with
      | '"' -> lx.pos <- lx.pos + 1
      | '\\' ->
          lx.str_escaped <- true;
          lx.pos <- lx.pos + 1;
          if lx.pos >= n then error lx start "unterminated string";
          (match lx.src.[lx.pos] with
           | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' ->
               incr len;
               lx.pos <- lx.pos + 1
           | 'u' ->
               lx.pos <- lx.pos + 1;
               let u = read_hex4 lx in
               if u >= 0xD800 && u <= 0xDBFF then begin
                 if lx.pos + 2 <= n && lx.src.[lx.pos] = '\\' && lx.src.[lx.pos + 1] = 'u'
                 then begin
                   lx.pos <- lx.pos + 2;
                   let lo = read_hex4 lx in
                   if lo >= 0xDC00 && lo <= 0xDFFF then len := !len + 4
                   else error lx lx.pos "invalid low surrogate"
                 end
                 else error lx lx.pos "unpaired high surrogate"
               end
               else if u >= 0xDC00 && u <= 0xDFFF then
                 error lx lx.pos "unpaired low surrogate"
               else len := !len + utf8_width u
           | c -> error lx lx.pos (Printf.sprintf "invalid escape '\\%c'" c));
          go ()
      | c when Char.code c < 0x20 ->
          error lx lx.pos "unescaped control character in string"
      | _ ->
          (* Run of plain bytes: consume the whole stretch in one tight
             loop. The budget is re-tested at the top of [go] before the
             stopping byte is examined, so a budget kill still wins over
             any later syntax error, exactly as in the per-byte loop. *)
          let p = ref (lx.pos + 1) in
          while
            !p < n
            && (let c = String.unsafe_get lx.src !p in
                c <> '"' && c <> '\\' && Char.code c >= 0x20)
          do
            incr p
          done;
          len := !len + (!p - lx.pos);
          lx.pos <- !p;
          go ()
  in
  go ();
  lx.str_stop <- lx.pos - 1;
  !len

(* Largest digit count that can never overflow a 63-bit [int]. *)
let max_safe_int_digits = 18

(* Number scan that avoids the literal copy on the common integer path.
   Consumes exactly the span [read_number] would, then classifies: a plain
   in-range integer literal is evaluated in place; anything else (floats,
   oversized or malformed literals) falls back to [Number.parse] on the
   substring so values and error messages stay identical. *)
let skim_number lx =
  let n = String.length lx.src in
  let start = lx.pos in
  let neg = lx.pos < n && lx.src.[lx.pos] = '-' in
  if neg then lx.pos <- lx.pos + 1;
  let digits_start = lx.pos in
  while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done;
  let digits_stop = lx.pos in
  let has_frac = lx.pos < n && lx.src.[lx.pos] = '.' in
  if has_frac then begin
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  let has_exp = lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') in
  if has_exp then begin
    lx.pos <- lx.pos + 1;
    if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then
      lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  let ndigits = digits_stop - digits_start in
  let valid_int =
    (not has_frac) && (not has_exp) && ndigits > 0
    && (lx.src.[digits_start] <> '0' || ndigits = 1)
    && ndigits <= max_safe_int_digits
  in
  if valid_int then begin
    let v = ref 0 in
    for i = digits_start to digits_stop - 1 do
      v := (!v * 10) + (Char.code lx.src.[i] - Char.code '0')
    done;
    Number_tok (Number.Int_lit (if neg then - !v else !v))
  end
  else
    let literal = String.sub lx.src start (lx.pos - start) in
    match Number.parse literal with
    | Ok parsed -> Number_tok parsed
    | Error msg -> error lx start msg

(* --- Allocation-free skim tokens ----------------------------------------

   [skim] is [next_skimming] stripped for fused hot loops: every token is an
   immediate constant, the start offset is latched in [tok_start] (a
   position record is built only on demand via [tok_pos]), string contents
   stay in the source (recoverable through [last_string_span] /
   [string_of_last]), and numbers are classified int-vs-float without
   materializing a value. Scanning, budgets, and every malformed-input
   error are shared with the materializing paths, so a skim loop fails at
   exactly the byte a full lex would. *)

type skim_tok =
  | S_lbrace
  | S_rbrace
  | S_lbracket
  | S_rbracket
  | S_colon
  | S_comma
  | S_true
  | S_false
  | S_null
  | S_int
  | S_float
  | S_string
  | S_eof

let skim_name = function
  | S_lbrace -> "'{'"
  | S_rbrace -> "'}'"
  | S_lbracket -> "'['"
  | S_rbracket -> "']'"
  | S_colon -> "':'"
  | S_comma -> "','"
  | S_true -> "'true'"
  | S_false -> "'false'"
  | S_null -> "'null'"
  | S_int | S_float -> "number"
  | S_string -> "string"
  | S_eof -> "end of input"

(* Classify a number literal in place. The well-formed cases whose magnitude
   provably fits the double range return without allocating; everything
   else — oversized integers, huge exponents, malformed literals — falls
   back to [Number.parse] on the substring so classification and error
   messages match [skim_number] exactly (overflow to infinity is a parse
   error, so it must not be classified blindly as a float). *)
let skim_number_kind lx =
  let n = String.length lx.src in
  let start = lx.pos in
  if lx.pos < n && lx.src.[lx.pos] = '-' then lx.pos <- lx.pos + 1;
  let digits_start = lx.pos in
  while lx.pos < n && is_digit (String.unsafe_get lx.src lx.pos) do
    lx.pos <- lx.pos + 1
  done;
  let ndigits = lx.pos - digits_start in
  let has_frac = lx.pos < n && lx.src.[lx.pos] = '.' in
  let frac_digits = ref 0 in
  if has_frac then begin
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit (String.unsafe_get lx.src lx.pos) do
      incr frac_digits;
      lx.pos <- lx.pos + 1
    done
  end;
  let has_exp = lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') in
  let exp_neg = ref false and exp_digits = ref 0 and exp_val = ref 0 in
  if has_exp then begin
    lx.pos <- lx.pos + 1;
    if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then begin
      exp_neg := lx.src.[lx.pos] = '-';
      lx.pos <- lx.pos + 1
    end;
    while lx.pos < n && is_digit (String.unsafe_get lx.src lx.pos) do
      if !exp_digits < 5 then
        exp_val := (!exp_val * 10) + (Char.code lx.src.[lx.pos] - Char.code '0');
      incr exp_digits;
      lx.pos <- lx.pos + 1
    done
  end;
  let well_formed =
    ndigits > 0
    && (lx.src.[digits_start] <> '0' || ndigits = 1)
    && ((not has_frac) || !frac_digits > 0)
    && ((not has_exp) || !exp_digits > 0)
  in
  let fallback () =
    let literal = String.sub lx.src start (lx.pos - start) in
    match Number.parse literal with
    | Ok (Number.Int_lit _) -> S_int
    | Ok (Number.Float_lit _) -> S_float
    | Error msg -> error lx start msg
  in
  if not well_formed then fallback ()
  else if (not has_frac) && not has_exp then
    if ndigits <= max_safe_int_digits then S_int else fallback ()
  else begin
    (* magnitude < 10^(integer digits + signed exponent); safe when that
       bound stays below 10^308 <= DBL_MAX. *)
    let safe =
      if not has_exp then ndigits <= 308
      else if !exp_digits > 5 then false
      else ndigits + (if !exp_neg then - !exp_val else !exp_val) <= 308
    in
    if safe then S_float else fallback ()
  end

let skim lx =
  (match lx.lookahead with
   | Some _ -> invalid_arg "Json.Lexer.skim: a peeked token is pending"
   | None -> ());
  skip_ws lx;
  let start = lx.pos in
  lx.tok_start <- start;
  if start >= String.length lx.src then S_eof
  else
    match String.unsafe_get lx.src start with
    | '{' -> lx.pos <- start + 1; S_lbrace
    | '}' -> lx.pos <- start + 1; S_rbrace
    | '[' -> lx.pos <- start + 1; S_lbracket
    | ']' -> lx.pos <- start + 1; S_rbracket
    | ':' -> lx.pos <- start + 1; S_colon
    | ',' -> lx.pos <- start + 1; S_comma
    | 't' -> ignore (expect_keyword lx "true" True); S_true
    | 'f' -> ignore (expect_keyword lx "false" False); S_false
    | 'n' -> ignore (expect_keyword lx "null" Null_tok); S_null
    | '"' ->
        let _len = skim_string lx in
        S_string
    | '-' | '0' .. '9' -> skim_number_kind lx
    | c -> error lx start (Printf.sprintf "unexpected character %C" c)

let tok_start lx = lx.tok_start

(* No token contains a raw newline (strings reject unescaped control
   characters), so line/bol have not moved since the token started and the
   position can be reconstructed lazily. *)
let tok_pos lx = position_at lx lx.tok_start

let last_string_span lx = (lx.str_start, lx.str_stop, lx.str_escaped)

let string_of_last lx =
  if not lx.str_escaped then
    String.sub lx.src lx.str_start (lx.str_stop - lx.str_start)
  else begin
    (* Escaped span: rewind to the opening quote and materialize with the
       canonical unescaper. It cannot fail — the skim already validated
       the literal and its budget. *)
    let save = lx.pos in
    lx.pos <- lx.str_start - 1;
    let s = read_string lx in
    lx.pos <- save;
    s
  end

let source lx = lx.src

let read_number lx =
  let n = String.length lx.src in
  let start = lx.pos in
  if lx.pos < n && lx.src.[lx.pos] = '-' then lx.pos <- lx.pos + 1;
  while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done;
  if lx.pos < n && lx.src.[lx.pos] = '.' then begin
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  if lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') then begin
    lx.pos <- lx.pos + 1;
    if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then
      lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do lx.pos <- lx.pos + 1 done
  end;
  let literal = String.sub lx.src start (lx.pos - start) in
  match Number.parse literal with
  | Ok parsed -> Number_tok parsed
  | Error msg -> error lx start msg

let lex_token lx =
  skip_ws lx;
  let start = lx.pos in
  let pos = position_at lx start in
  let tok =
    if lx.pos >= String.length lx.src then Eof
    else
      match lx.src.[lx.pos] with
      | '{' -> lx.pos <- lx.pos + 1; Lbrace
      | '}' -> lx.pos <- lx.pos + 1; Rbrace
      | '[' -> lx.pos <- lx.pos + 1; Lbracket
      | ']' -> lx.pos <- lx.pos + 1; Rbracket
      | ':' -> lx.pos <- lx.pos + 1; Colon
      | ',' -> lx.pos <- lx.pos + 1; Comma
      | 't' -> expect_keyword lx "true" True
      | 'f' -> expect_keyword lx "false" False
      | 'n' -> expect_keyword lx "null" Null_tok
      | '"' -> String_tok (read_string lx)
      | '-' | '0' .. '9' -> read_number lx
      | c -> error lx start (Printf.sprintf "unexpected character %C" c)
  in
  (tok, pos)

let next lx =
  match lx.lookahead with
  | Some t ->
      lx.lookahead <- None;
      t
  | None -> lex_token lx

let peek lx =
  match lx.lookahead with
  | Some t -> t
  | None ->
      let t = lex_token lx in
      lx.lookahead <- Some t;
      t

(* Like [next], but string literals are skimmed instead of unescaped: the
   returned token is [String_tok ""] with the same budget enforcement and
   error behavior as a materializing lex. A pending [peek]ed token is
   consumed as-is (its string, if any, is already materialized). *)
let next_skimming lx =
  match lx.lookahead with
  | Some (tok, pos) ->
      lx.lookahead <- None;
      let tok = match tok with String_tok _ -> String_tok "" | t -> t in
      (tok, pos)
  | None ->
      skip_ws lx;
      let start = lx.pos in
      let pos = position_at lx start in
      let tok =
        if lx.pos >= String.length lx.src then Eof
        else
          match lx.src.[lx.pos] with
          | '{' -> lx.pos <- lx.pos + 1; Lbrace
          | '}' -> lx.pos <- lx.pos + 1; Rbrace
          | '[' -> lx.pos <- lx.pos + 1; Lbracket
          | ']' -> lx.pos <- lx.pos + 1; Rbracket
          | ':' -> lx.pos <- lx.pos + 1; Colon
          | ',' -> lx.pos <- lx.pos + 1; Comma
          | 't' -> expect_keyword lx "true" True
          | 'f' -> expect_keyword lx "false" False
          | 'n' -> expect_keyword lx "null" Null_tok
          | '"' ->
              let _len = skim_string lx in
              String_tok ""
          | '-' | '0' .. '9' -> skim_number lx
          | c -> error lx start (Printf.sprintf "unexpected character %C" c)
      in
      (tok, pos)
