(** Event-based (SAX-style) JSON processing.

    The streaming inference tools (mongodb-schema style) and the translators
    consume events rather than trees, so collections larger than memory can
    be processed one object at a time. *)

type event =
  | Start_object
  | Field_name of string
  | End_object
  | Start_array
  | End_array
  | Scalar of Value.t  (** always [Null], [Bool], [Int], [Float] or [String] *)

val pp_event : Format.formatter -> event -> unit
val event_equal : event -> event -> bool

type reader
(** Pull-based event reader over one document. *)

val reader : string -> reader
val read : reader -> (event option, Parser.error) result
(** [Ok None] at end of the document. Events are verified well-nested. *)

val events_of_value : Value.t -> event list
val value_of_events : event list -> (Value.t, string) result
(** Rebuild a tree; fails on ill-formed sequences. *)

val fold :
  ?options:Parser.options ->
  string ->
  init:'a ->
  f:('a -> event -> 'a) ->
  ('a, Parser.error) result
(** Fold over all events of one document without building a tree. *)

val fold_documents :
  ?options:Parser.options ->
  string ->
  init:'a ->
  f:('a -> Value.t -> 'a) ->
  ('a, Parser.error) result
(** Fold over an NDJSON / concatenated-JSON collection one parsed document at
    a time — constant memory in the number of documents. *)

val fold_documents_chunked :
  ?options:Parser.options ->
  (unit -> string option) ->
  init:'a ->
  f:('a -> Value.t -> 'a) ->
  ('a, Parser.error) result
(** [fold_documents_chunked refill ~init ~f] is like {!fold_documents}, but
    over input delivered in chunks by [refill]
    ([None] = end of stream). Chunk boundaries are invisible: a token —
    including a multi-byte UTF-8 sequence or a [\uXXXX] surrogate pair split
    mid-escape — may land anywhere, even one byte per chunk, and the fold
    produces the same documents and the same errors as {!fold_documents} on
    the concatenation. Consumed documents are dropped from the buffer, so
    memory is bounded by the largest single document plus one chunk.
    Reported byte offsets are absolute in the whole stream; line/column are
    document-relative, exactly as in {!fold_documents}. *)
