type event =
  | Start_object
  | Field_name of string
  | End_object
  | Start_array
  | End_array
  | Scalar of Value.t

let pp_event ppf = function
  | Start_object -> Format.pp_print_string ppf "{"
  | Field_name k -> Format.fprintf ppf "key %S" k
  | End_object -> Format.pp_print_string ppf "}"
  | Start_array -> Format.pp_print_string ppf "["
  | End_array -> Format.pp_print_string ppf "]"
  | Scalar v -> Value.pp ppf v

let event_equal a b =
  match (a, b) with
  | Start_object, Start_object
  | End_object, End_object
  | Start_array, Start_array
  | End_array, End_array ->
      true
  | Field_name x, Field_name y -> String.equal x y
  | Scalar x, Scalar y -> Value.equal_strict x y
  | (Start_object | End_object | Start_array | End_array | Field_name _ | Scalar _), _
    ->
      false

(* The reader is a small pushdown automaton over lexer tokens. The stack
   tracks whether we are inside an array or an object, and whether the next
   thing expected is a value, a comma, or a field name. *)
type frame = In_array_value | In_array_sep | In_object_key | In_object_colon | In_object_sep

type reader = {
  lx : Lexer.t;
  mutable stack : frame list;
  mutable started : bool;
  mutable finished : bool;
}

let reader src = { lx = Lexer.create src; stack = []; started = false; finished = false }

exception Err of Parser.error

let fail pos message =
  raise (Err { Parser.position = pos; message; kind = Parser.Syntax })

let scalar_of_token tok =
  match tok with
  | Lexer.Null_tok -> Some Value.Null
  | Lexer.True -> Some (Value.Bool true)
  | Lexer.False -> Some (Value.Bool false)
  | Lexer.Number_tok (Number.Int_lit n) -> Some (Value.Int n)
  | Lexer.Number_tok (Number.Float_lit f) -> Some (Value.Float f)
  | Lexer.String_tok s -> Some (Value.String s)
  | Lexer.Lbrace | Lexer.Rbrace | Lexer.Lbracket | Lexer.Rbracket | Lexer.Colon
  | Lexer.Comma | Lexer.Eof ->
      None

(* After producing a complete value, the enclosing frame switches to
   "expect separator". *)
let after_value r =
  match r.stack with
  | In_array_value :: rest -> r.stack <- In_array_sep :: rest
  | In_object_colon :: rest -> r.stack <- In_object_sep :: rest
  | _ -> ()

let read_value r tok pos =
  match tok with
  | Lexer.Lbrace ->
      r.stack <- In_object_key :: r.stack;
      Start_object
  | Lexer.Lbracket ->
      r.stack <- In_array_value :: r.stack;
      Start_array
  | tok -> (
      match scalar_of_token tok with
      | Some v ->
          after_value r;
          Scalar v
      | None -> fail pos (Printf.sprintf "expected a value, got %s" (Lexer.token_name tok)))

let read_event r =
  let tok, pos = Lexer.next r.lx in
  match r.stack with
  | [] ->
      if r.started then fail pos "trailing input after document"
      else begin
        r.started <- true;
        let ev = read_value r tok pos in
        if r.stack = [] then r.finished <- true;
        ev
      end
  | In_array_value :: rest -> (
      match tok with
      | Lexer.Rbracket ->
          (* only legal immediately after '[' — i.e. an empty array *)
          r.stack <- rest;
          after_value r;
          if r.stack = [] then r.finished <- true;
          End_array
      | tok ->
          let ev = read_value r tok pos in
          if r.stack = [] then r.finished <- true;
          ev)
  | In_array_sep :: rest -> (
      match tok with
      | Lexer.Comma ->
          r.stack <- In_array_value :: rest;
          let tok, pos = Lexer.next r.lx in
          let ev = read_value r tok pos in
          if r.stack = [] then r.finished <- true;
          ev
      | Lexer.Rbracket ->
          r.stack <- rest;
          after_value r;
          if r.stack = [] then r.finished <- true;
          End_array
      | tok -> fail pos (Printf.sprintf "expected ',' or ']', got %s" (Lexer.token_name tok)))
  | In_object_key :: rest -> (
      match tok with
      | Lexer.String_tok k ->
          r.stack <- In_object_colon :: rest;
          Field_name k
      | Lexer.Rbrace ->
          r.stack <- rest;
          after_value r;
          if r.stack = [] then r.finished <- true;
          End_object
      | tok ->
          fail pos (Printf.sprintf "expected a field name or '}', got %s" (Lexer.token_name tok)))
  | In_object_colon :: _ -> (
      match tok with
      | Lexer.Colon ->
          let tok, pos = Lexer.next r.lx in
          let ev = read_value r tok pos in
          if r.stack = [] then r.finished <- true;
          ev
      | tok -> fail pos (Printf.sprintf "expected ':', got %s" (Lexer.token_name tok)))
  | In_object_sep :: rest -> (
      match tok with
      | Lexer.Comma ->
          r.stack <- In_object_key :: rest;
          let tok, pos = Lexer.next r.lx in
          (match tok with
           | Lexer.String_tok k ->
               r.stack <- In_object_colon :: (match r.stack with _ :: t -> t | [] -> []);
               Field_name k
           | tok ->
               fail pos (Printf.sprintf "expected a field name, got %s" (Lexer.token_name tok)))
      | Lexer.Rbrace ->
          r.stack <- rest;
          after_value r;
          if r.stack = [] then r.finished <- true;
          End_object
      | tok -> fail pos (Printf.sprintf "expected ',' or '}', got %s" (Lexer.token_name tok)))

let read r =
  if r.finished then Ok None
  else
    try Ok (Some (read_event r)) with
    | Err e -> Error e
    | Lexer.Lex_error (position, message) ->
        Error { Parser.position; message; kind = Parser.Syntax }
    | Lexer.Limit_error (position, message) ->
        Error
          { Parser.position;
            message;
            kind = Parser.Budget_exceeded Parser.String_exceeded }

let events_of_value v =
  let rec go v acc =
    match v with
    | Value.Null | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _ ->
        Scalar v :: acc
    | Value.Array vs -> End_array :: List.fold_left (fun acc x -> go x acc) (Start_array :: acc) vs
    | Value.Object fields ->
        End_object
        :: List.fold_left
             (fun acc (k, x) -> go x (Field_name k :: acc))
             (Start_object :: acc)
             fields
  in
  List.rev (go v [])

let value_of_events events =
  (* Stack of partially-built containers. *)
  let module S = struct
    type partial =
      | Arr of Value.t list                     (* reversed elements *)
      | Obj of (string * Value.t) list * string option  (* reversed fields, pending key *)
  end in
  let open S in
  let rec push_value v stack =
    match stack with
    | [] -> Ok (`Done v)
    | Arr elts :: rest -> Ok (`More (Arr (v :: elts) :: rest))
    | Obj (fields, Some k) :: rest -> Ok (`More (Obj ((k, v) :: fields, None) :: rest))
    | Obj (_, None) :: _ -> Error "value in object position without a field name"
  and go stack events =
    match events with
    | [] -> Error "truncated event sequence"
    | ev :: rest -> (
        match ev with
        | Scalar v -> continue (push_value v stack) rest
        | Start_array -> go (Arr [] :: stack) rest
        | Start_object -> go (Obj ([], None) :: stack) rest
        | Field_name k -> (
            match stack with
            | Obj (fields, None) :: tail -> go (Obj (fields, Some k) :: tail) rest
            | _ -> Error "field name outside an object")
        | End_array -> (
            match stack with
            | Arr elts :: tail ->
                continue (push_value (Value.Array (List.rev elts)) tail) rest
            | _ -> Error "unmatched end of array")
        | End_object -> (
            match stack with
            | Obj (fields, None) :: tail ->
                continue (push_value (Value.Object (List.rev fields)) tail) rest
            | Obj (_, Some _) :: _ -> Error "object ended while expecting a value"
            | _ -> Error "unmatched end of object"))
  and continue result rest =
    match result with
    | Error _ as e -> e
    | Ok (`Done v) -> if rest = [] then Ok v else Error "events after document end"
    | Ok (`More stack) -> go stack rest
  in
  go [] events

let fold ?options:_ src ~init ~f =
  let r = reader src in
  let rec go acc =
    match read r with
    | Ok None -> Ok acc
    | Ok (Some ev) -> go (f acc ev)
    | Error e -> Error e
  in
  go init

let fold_documents_chunked ?(options = Parser.default_options) refill ~init ~f =
  let options = { options with Parser.allow_trailing = true } in
  (* Buffered input: [data] holds the not-yet-consumed suffix of the stream,
     [consumed] counts the bytes dropped by compaction so reported offsets
     stay absolute in the whole stream. Line/column need no rebasing:
     [fold_documents] creates a fresh lexer per document, so positions are
     document-relative there too. *)
  let data = ref "" in
  let cursor = ref 0 in
  let consumed = ref 0 in
  let rebase (e : Parser.error) =
    let p = e.Parser.position in
    { e with
      Parser.position = { p with Lexer.offset = p.Lexer.offset + !consumed } }
  in
  let ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let rec step acc ~eof =
    let s = !data in
    let n = String.length s in
    while !cursor < n && ws s.[!cursor] do incr cursor done;
    if !cursor >= n then if eof then Ok acc else grow acc
    else
      match Parser.parse_substring ~options s ~pos:!cursor with
      | Ok (v, stop) when stop < n || eof ->
          (* A value ending strictly before the buffered frontier is
             complete no matter what bytes follow; at [eof] the frontier is
             final. A value that touches the frontier mid-stream (e.g. a
             bare number) could still be extended by the next chunk, so it
             is not accepted yet. *)
          consumed := !consumed + stop;
          data := String.sub s stop (n - stop);
          cursor := 0;
          step (f acc v) ~eof
      | Ok _ -> grow acc
      | Error e when eof -> Error (rebase e)
      | Error _ ->
          (* Possibly a truncated document (unterminated string, dangling
             escape, split UTF-8 sequence...); retry once more input
             arrives. Real errors surface unchanged at end of stream. *)
          grow acc
  and grow acc =
    match refill () with
    | None -> step acc ~eof:true
    | Some chunk ->
        if chunk <> "" then data := !data ^ chunk;
        step acc ~eof:false
  in
  step init ~eof:false

let fold_documents ?(options = Parser.default_options) src ~init ~f =
  let options = { options with Parser.allow_trailing = true } in
  let n = String.length src in
  let rec skip_ws i =
    if i < n && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let rec go acc pos =
    let pos = skip_ws pos in
    if pos >= n then Ok acc
    else
      match Parser.parse_substring ~options src ~pos with
      | Ok (v, next_pos) -> go (f acc v) next_pos
      | Error e -> Error e
  in
  go init 0
