(** Hand-written JSON lexer with byte-accurate source positions.

    The lexer is shared by the tree parser ({!Parser}) and the event parser
    ({!Stream}). It performs string unescaping (including surrogate pairs)
    and validates UTF-8 in string literals. *)

type position = { offset : int; line : int; column : int }
(** 0-based byte [offset]; 1-based [line] and [column]. *)

type token =
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Colon
  | Comma
  | True
  | False
  | Null_tok
  | String_tok of string  (** unescaped contents *)
  | Number_tok of Number.parsed
  | Eof

exception Lex_error of position * string

exception Limit_error of position * string
(** A lexical resource budget (currently the string-length cap) was hit.
    Distinct from {!Lex_error} so callers can classify the failure as a
    budget kill rather than a syntax error. *)

type t
(** Lexer state over an in-memory document. *)

(** [create ?pos ?max_string_bytes src] lexes [src] starting at byte offset
    [pos] (default 0; line/column numbers are counted from that point).
    [max_string_bytes] caps the unescaped length of any one string literal;
    exceeding it raises {!Limit_error}. *)
val create : ?pos:int -> ?max_string_bytes:int -> string -> t
val next : t -> token * position
(** Next token and the position where it starts.
    @raise Lex_error on malformed input. *)

val peek : t -> token * position
(** Like {!next} without consuming. *)

val next_skimming : t -> token * position
(** Like {!next}, but string literals are validated and skipped without
    materializing their unescaped contents: the token comes back as
    [String_tok ""]. Budget enforcement ([max_string_bytes], counted in
    decoded bytes) and every malformed-input error — position and message —
    are identical to {!next}, so a skimming parse fails exactly where a
    materializing parse would. A token already buffered by {!peek} is
    returned as lexed. The streaming engines use this for payloads whose
    contents provably don't influence the result. *)

val position : t -> position
(** Current position (after the last consumed token). *)

val offset : t -> int
(** Current byte offset — [(position lx).offset] without the record. *)

val token_name : token -> string
(** Human-readable token description for error messages. *)

(** {2 Allocation-free skim tokens}

    The fused streaming engines lex millions of tokens per shard; returning
    a [(token * position)] tuple plus a position record per token is pure
    GC pressure when the consumer only branches on the token's kind. [skim]
    returns an immediate constant instead: numbers are classified
    int-vs-float in place, string contents stay in the source (recover them
    with {!last_string_span} / {!string_of_last}), and the token's start
    offset is latched on the lexer ({!tok_start}, {!tok_pos}). Scanning,
    budgets, and malformed-input errors are shared with {!next}, so a skim
    loop fails at exactly the byte a materializing lex would. *)

type skim_tok =
  | S_lbrace
  | S_rbrace
  | S_lbracket
  | S_rbracket
  | S_colon
  | S_comma
  | S_true
  | S_false
  | S_null
  | S_int  (** number literal that evaluates to an integer *)
  | S_float  (** number literal that evaluates to a float *)
  | S_string  (** string literal; span latched on the lexer *)
  | S_eof

val skim : t -> skim_tok
(** Next token as an unallocated constant. Must not be called with a
    {!peek}ed token pending (raises [Invalid_argument]); the streaming
    engines own their lexer and never peek.
    @raise Lex_error on malformed input, as {!next} would. *)

val skim_name : skim_tok -> string
(** Human-readable description, matching {!token_name} on the
    corresponding token. *)

val tok_start : t -> int
(** Byte offset where the last {!skim}med token starts. *)

val tok_pos : t -> position
(** Position where the last {!skim}med token starts — built on demand, for
    error paths only. *)

val last_string_span : t -> int * int * bool
(** [(start, stop, escaped)] for the last [S_string]: the contents span
    (exclusive of quotes) in the source, and whether it contains backslash
    escapes (in which case the raw span is not the decoded contents). *)

val string_of_last : t -> string
(** Decoded contents of the last [S_string] token: a direct substring when
    the span is escape-free, otherwise a re-lex through the canonical
    unescaper. *)

val source : t -> string
(** The document being lexed (for span-based consumers). *)
