(* Compiled validation plans.

   [Validate.check] re-interprets the schema per document: every keyword is
   an [option] probe on the node record, every [$ref] is a string resolved
   through a per-document cache, and [validate ~root] even re-parses the
   whole schema document each call. This module lowers a parsed [Schema.t]
   once into a tree of specialized closures — the *plan* — and then runs
   the plan per document:

   - [$ref] targets are resolved exactly once into a memoized target table
     (cycles are detected during lowering via the in-flight stack and
     surfaced as {!cycles}); recursive targets are tied with back-patched
     cells so the plan is an ordinary immutable closure graph.
   - per-keyword checks are specialized: absent keywords cost nothing,
     [type] lowers to a kind-dispatch on precomputed booleans, [enum]
     membership goes through a hashed literal set, [properties] lookup
     through a hash table, [pattern]/[patternProperties]/[propertyNames]
     regexes and [format] checkers are bound at build time.
   - trivially-true subschemas (boolean [true], `{}`, annotation-only
     nodes) are pruned to a constant check.

   The contract that keeps the fast path honest: a plan must be
   *byte-identical* to the interpreter — same verdicts, same error records
   in the same order, same telemetry keyword counters. That is why the
   runtime still carries the interpreter's fuel and depth counters (the
   fuel budget is observable through its error message on cyclic schemas,
   and its reset-on-input rule shapes which documents exhaust it), and why
   every error string below reuses the interpreter's exact format strings.
   The differential conformance suite and the QCheck oracle in
   [test/test_jsonschema.ml] enforce the contract.

   Plans are immutable after [compile] returns and hold only immutable
   data, so one plan is safely shared across domains; the fingerprint cache
   below lets sharded pipelines reuse one compilation per schema. *)

type error = Validate.error

(* Everything the plan needs from [Validate.config] at run time. Plans are
   config-independent: the same plan serves any config. *)
type rt = {
  formats : bool;
  max_fuel : int;
  max_depth : int;
  tele : Telemetry.sink;
}

(* A compiled check: [cc rt fuel depth schema_at at v] mirrors
   [Validate.check ctx ~fuel ~depth ~schema_at ~at s v]. *)
type cc =
  rt -> int -> int -> Json.Pointer.t -> Json.Pointer.t -> Json.Value.t ->
  error list

(* A compiled keyword: pushes errors onto a reversed accumulator, exactly
   like the interpreter's [errors] ref, so orderings agree by construction. *)
type kc =
  rt -> error list ref -> int -> int -> Json.Pointer.t -> Json.Pointer.t ->
  Json.Value.t -> unit

let kp at k = Json.Pointer.append at (Json.Pointer.Key k)
let ip at i = Json.Pointer.append at (Json.Pointer.Index i)
let add errors e = errors := e :: !errors
let add_all errors es = errors := List.rev_append es !errors

let err ~at ~schema_at sk message =
  { Validate.instance_at = at; schema_at = kp schema_at sk; message }

let depth_error rt ~schema_at ~at =
  { Validate.instance_at = at;
    schema_at;
    message =
      Printf.sprintf
        "maximum validation depth %d exceeded (deeply nested instance or recursive schema)"
        rt.max_depth }

let budget_msg = "reference expansion budget exhausted (cyclic schema?)"

(* keyword-counter keys, built once per module instead of per evaluation *)
let kw_ref = "validate.kw.$ref"
let kw_type = "validate.kw.type"
let kw_enum = "validate.kw.enum"
let kw_const = "validate.kw.const"
let kw_minimum = "validate.kw.minimum"
let kw_maximum = "validate.kw.maximum"
let kw_exclusive_minimum = "validate.kw.exclusiveMinimum"
let kw_exclusive_maximum = "validate.kw.exclusiveMaximum"
let kw_multiple_of = "validate.kw.multipleOf"
let kw_min_length = "validate.kw.minLength"
let kw_max_length = "validate.kw.maxLength"
let kw_pattern = "validate.kw.pattern"
let kw_format = "validate.kw.format"
let kw_min_items = "validate.kw.minItems"
let kw_max_items = "validate.kw.maxItems"
let kw_unique_items = "validate.kw.uniqueItems"
let kw_items = "validate.kw.items"
let kw_contains = "validate.kw.contains"
let kw_min_properties = "validate.kw.minProperties"
let kw_max_properties = "validate.kw.maxProperties"
let kw_required = "validate.kw.required"
let kw_property_names = "validate.kw.propertyNames"
let kw_properties = "validate.kw.properties"
let kw_pattern_properties = "validate.kw.patternProperties"
let kw_additional_properties = "validate.kw.additionalProperties"
let kw_dependencies = "validate.kw.dependencies"
let kw_all_of = "validate.kw.allOf"
let kw_any_of = "validate.kw.anyOf"
let kw_one_of = "validate.kw.oneOf"
let kw_not = "validate.kw.not"
let kw_if = "validate.kw.if"

(* --- hashed literal sets ----------------------------------------------- *)

(* A hash compatible with [Json.Value.equal]: that equality sorts object
   keys (order-insensitive, multiplicity-sensitive) and compares numbers by
   value across Int/Float, so numbers hash through their float image
   (-0.0 normalized: it equals 0.0) and objects through a commutative
   combination of their fields. Collisions only cost a bucket scan. *)
let hash_num f = Hashtbl.hash (if f = 0.0 then 0.0 else f)

let rec literal_hash (v : Json.Value.t) =
  match v with
  | Json.Value.Null -> 3
  | Json.Value.Bool false -> 5
  | Json.Value.Bool true -> 7
  | Json.Value.Int n -> hash_num (float_of_int n)
  | Json.Value.Float f -> hash_num f
  | Json.Value.String s -> Hashtbl.hash s
  | Json.Value.Array vs ->
      List.fold_left (fun acc x -> (acc * 31) + literal_hash x) 11 vs
  | Json.Value.Object fields ->
      13
      + List.fold_left
          (fun acc (k, x) -> acc + (Hashtbl.hash k lxor literal_hash x))
          0 fields

let literal_set vs =
  let tbl = Hashtbl.create (2 * List.length vs) in
  List.iter
    (fun v ->
      let h = literal_hash v in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt tbl h) in
      if not (List.exists (Json.Value.equal v) bucket) then
        Hashtbl.replace tbl h (v :: bucket))
    vs;
  fun v ->
    match Hashtbl.find_opt tbl (literal_hash v) with
    | None -> false
    | Some bucket -> List.exists (Json.Value.equal v) bucket

(* --- plan lowering ------------------------------------------------------ *)

type stats = {
  mutable nodes : int;        (* subschemas lowered (incl. ref targets) *)
  mutable pruned : int;       (* trivially-true subschemas shortcut *)
  mutable ref_targets : int;  (* distinct $ref targets resolved *)
  mutable cycles : int;       (* back-edges in the $ref graph *)
}

type builder = {
  root : Json.Value.t;                      (* the schema document *)
  targets : (string, cc ref) Hashtbl.t;     (* $ref target -> compiled cell *)
  mutable in_flight : string list;          (* targets currently lowering *)
  st : stats;
}

(* only reachable before the owning [resolve_target] back-patches the cell,
   i.e. never at run time *)
let unlinked_cc : cc = fun _ _ _ _ _ _ -> assert false

(* compiled [dependencies] entry *)
type cdep = Cdep_required of string list | Cdep_schema of cc

let rec compile_schema b (s : Schema.t) : cc =
  b.st.nodes <- b.st.nodes + 1;
  match s with
  | Schema.Bool_schema true ->
      b.st.pruned <- b.st.pruned + 1;
      fun rt _fuel depth schema_at at _v ->
        if depth > rt.max_depth then [ depth_error rt ~schema_at ~at ] else []
  | Schema.Bool_schema false ->
      fun rt _fuel depth schema_at at _v ->
        if depth > rt.max_depth then [ depth_error rt ~schema_at ~at ]
        else
          [ { Validate.instance_at = at; schema_at; message = "schema is false" } ]
  | Schema.Schema n -> (
      match kchecks b n with
      | [||] ->
          (* annotation-only node: no keyword ever fires, but the node still
             reports its depth to the gauge and guards the depth bound,
             exactly like the interpreter entering [check_node] *)
          b.st.pruned <- b.st.pruned + 1;
          fun rt _fuel depth schema_at at _v ->
            if depth > rt.max_depth then [ depth_error rt ~schema_at ~at ]
            else begin
              Telemetry.gauge_max rt.tele "validate.max_depth"
                (float_of_int depth);
              []
            end
      | ks ->
          fun rt fuel depth schema_at at v ->
            if depth > rt.max_depth then [ depth_error rt ~schema_at ~at ]
            else begin
              Telemetry.gauge_max rt.tele "validate.max_depth"
                (float_of_int depth);
              let errors = ref [] in
              Array.iter (fun k -> k rt errors fuel depth schema_at at v) ks;
              List.rev !errors
            end)

(* Resolve a [$ref] target once, memoized; recursion ties the knot through
   the cell. Returns the interpreter's exact [Invalid_ref] message when the
   target is unusable, so the error closure reproduces it per document. *)
and resolve_target b target : (cc ref, string) result =
  match Hashtbl.find_opt b.targets target with
  | Some cell ->
      if List.mem target b.in_flight then b.st.cycles <- b.st.cycles + 1;
      Ok cell
  | None -> (
      let ptr_str =
        if String.equal target "#" then Ok ""
        else if String.length target > 0 && target.[0] = '#' then
          Ok (String.sub target 1 (String.length target - 1))
        else Error (Printf.sprintf "unsupported (non-local) $ref %S" target)
      in
      match ptr_str with
      | Error m -> Error m
      | Ok ps -> (
          match Json.Pointer.parse ps with
          | Error msg -> Error msg
          | Ok ptr -> (
              match Json.Pointer.get ptr b.root with
              | None -> Error (Printf.sprintf "$ref target %S not found" target)
              | Some sub_json -> (
                  match Parse.of_json sub_json with
                  | Error e -> Error (Parse.string_of_error e)
                  | Ok s ->
                      b.st.ref_targets <- b.st.ref_targets + 1;
                      let cell = ref unlinked_cc in
                      Hashtbl.add b.targets target cell;
                      b.in_flight <- target :: b.in_flight;
                      let cc = compile_schema b s in
                      b.in_flight <- List.tl b.in_flight;
                      cell := cc;
                      Ok cell))))

(* One [kc] per keyword group present on the node, in the interpreter's
   evaluation order. An absent keyword contributes nothing to the array. *)
and kchecks b (n : Schema.node) : kc array =
  let ks = ref [] in
  let addk k = ks := k :: !ks in
  (* $ref *)
  (match n.Schema.ref_ with
   | None -> ()
   | Some target -> (
       match resolve_target b target with
       | Ok cell ->
           addk (fun rt errors fuel depth schema_at at v ->
               Telemetry.count rt.tele kw_ref 1;
               if fuel <= 0 then
                 add errors (err ~at ~schema_at "$ref" budget_msg)
               else
                 add_all errors
                   (!cell rt (fuel - 1) (depth + 1) (kp schema_at "$ref") at v))
       | Error msg ->
           addk (fun rt errors fuel _depth schema_at at _v ->
               Telemetry.count rt.tele kw_ref 1;
               if fuel <= 0 then
                 add errors (err ~at ~schema_at "$ref" budget_msg)
               else add errors (err ~at ~schema_at "$ref" msg))));
  (* type: kind dispatch on precomputed booleans *)
  (match n.Schema.types with
   | None -> ()
   | Some ts ->
       let null_ok = List.mem `Null ts and bool_ok = List.mem `Boolean ts
       and int_ok = List.mem `Integer ts and num_ok = List.mem `Number ts
       and str_ok = List.mem `String ts and arr_ok = List.mem `Array ts
       and obj_ok = List.mem `Object ts in
       let expected =
         String.concat " or " (List.map Schema.type_name_to_string ts)
       in
       addk (fun rt errors _fuel _depth schema_at at v ->
           Telemetry.count rt.tele kw_type 1;
           let ok =
             match v with
             | Json.Value.Null -> null_ok
             | Json.Value.Bool _ -> bool_ok
             | Json.Value.Int _ -> int_ok || num_ok
             | Json.Value.Float f -> num_ok || (int_ok && Float.is_integer f)
             | Json.Value.String _ -> str_ok
             | Json.Value.Array _ -> arr_ok
             | Json.Value.Object _ -> obj_ok
           in
           if not ok then
             add errors
               (err ~at ~schema_at "type"
                  (Printf.sprintf "expected %s, got %s" expected
                     (Json.Value.kind_name (Json.Value.kind v))))));
  (* enum / const *)
  (match n.Schema.enum with
   | None -> ()
   | Some vs ->
       let mem =
         (* the hashed set pays off past a handful of literals; tiny enums
            scan, exactly like the interpreter *)
         if List.length vs >= 4 then literal_set vs
         else fun v -> List.exists (Json.Value.equal v) vs
       in
       addk (fun rt errors _fuel _depth schema_at at v ->
           Telemetry.count rt.tele kw_enum 1;
           if not (mem v) then
             add errors
               (err ~at ~schema_at "enum"
                  "value is not one of the enumerated values")));
  (match n.Schema.const with
   | None -> ()
   | Some c ->
       let msg = "expected " ^ Json.Printer.to_string c in
       addk (fun rt errors _fuel _depth schema_at at v ->
           Telemetry.count rt.tele kw_const 1;
           if not (Json.Value.equal v c) then
             add errors (err ~at ~schema_at "const" msg)));
  (* numeric: bounds folded into one closure guarded by a single
     [number_of] probe *)
  (let nchecks = ref [] in
   let addn c = nchecks := c :: !nchecks in
   let bound keyword counter test msg = function
     | None -> ()
     | Some limit ->
         addn (fun rt errors schema_at at f _v ->
             Telemetry.count rt.tele counter 1;
             if not (test f limit) then
               add errors (err ~at ~schema_at keyword (Printf.sprintf msg limit f)))
   in
   bound "minimum" kw_minimum (fun f l -> f >= l) "expected >= %g, got %g"
     n.Schema.minimum;
   bound "maximum" kw_maximum (fun f l -> f <= l) "expected <= %g, got %g"
     n.Schema.maximum;
   bound "exclusiveMinimum" kw_exclusive_minimum (fun f l -> f > l)
     "expected > %g, got %g" n.Schema.exclusive_minimum;
   bound "exclusiveMaximum" kw_exclusive_maximum (fun f l -> f < l)
     "expected < %g, got %g" n.Schema.exclusive_maximum;
   (match n.Schema.multiple_of with
    | None -> ()
    | Some m ->
        addn (fun rt errors schema_at at f v ->
            Telemetry.count rt.tele kw_multiple_of 1;
            if not (Validate.multiple_of_value_ok v m) then
              add errors
                (err ~at ~schema_at "multipleOf"
                   (Printf.sprintf "%g is not a multiple of %g" f m))));
   match List.rev !nchecks with
   | [] -> ()
   | ncs ->
       let ncs = Array.of_list ncs in
       addk (fun rt errors _fuel _depth schema_at at v ->
           match Validate.number_of v with
           | None -> ()
           | Some f -> Array.iter (fun c -> c rt errors schema_at at f v) ncs));
  (* string: length bounds share one UTF-8 count, regex and format checker
     bound at build time *)
  (let schecks = ref [] in
   let adds c = schecks := c :: !schecks in
   (match n.Schema.min_length with
    | None -> ()
    | Some m ->
        adds (fun rt errors schema_at at _s len ->
            Telemetry.count rt.tele kw_min_length 1;
            if len < m then
              add errors
                (err ~at ~schema_at "minLength"
                   (Printf.sprintf "length %d < %d" len m))));
   (match n.Schema.max_length with
    | None -> ()
    | Some m ->
        adds (fun rt errors schema_at at _s len ->
            Telemetry.count rt.tele kw_max_length 1;
            if len > m then
              add errors
                (err ~at ~schema_at "maxLength"
                   (Printf.sprintf "length %d > %d" len m))));
   (match n.Schema.pattern with
    | None -> ()
    | Some (src, re) ->
        adds (fun rt errors schema_at at s _len ->
            Telemetry.count rt.tele kw_pattern 1;
            if not (Re.execp re s) then
              add errors
                (err ~at ~schema_at "pattern"
                   (Printf.sprintf "%S does not match /%s/" s src))));
   (match n.Schema.format with
    | None -> ()
    | Some name ->
        let checker = Validate.format_checker name in
        adds (fun rt errors schema_at at s _len ->
            if rt.formats then begin
              Telemetry.count rt.tele kw_format 1;
              match checker with
              | Some f when not (f s) ->
                  add errors
                    (err ~at ~schema_at "format"
                       (Printf.sprintf "%S is not a valid %s" s name))
              | Some _ | None -> ()
            end));
   match List.rev !schecks with
   | [] -> ()
   | scs ->
       let scs = Array.of_list scs in
       let need_len =
         n.Schema.min_length <> None || n.Schema.max_length <> None
       in
       addk (fun rt errors _fuel _depth schema_at at v ->
           match v with
           | Json.Value.String s ->
               let len = if need_len then Validate.utf8_length s else 0 in
               Array.iter (fun c -> c rt errors schema_at at s len) scs
           | _ -> ()));
  (* array *)
  (let min_i = n.Schema.min_items and max_i = n.Schema.max_items in
   let unique = n.Schema.unique_items in
   let items_cc =
     match n.Schema.items with
     | None -> None
     | Some (Schema.Items_one s) -> Some (`One (compile_schema b s))
     | Some (Schema.Items_many ss) ->
         Some
           (`Many
              ( Array.of_list (List.map (compile_schema b) ss),
                Option.map (compile_schema b) n.Schema.additional_items ))
   in
   let contains_cc = Option.map (compile_schema b) n.Schema.contains in
   let min_c = n.Schema.min_contains and max_c = n.Schema.max_contains in
   if min_i <> None || max_i <> None || unique || items_cc <> None
      || contains_cc <> None
   then
     addk (fun rt errors _fuel depth schema_at at v ->
         match v with
         | Json.Value.Array elems ->
             (if min_i <> None || max_i <> None then begin
                let len = List.length elems in
                (match min_i with
                 | None -> ()
                 | Some m ->
                     Telemetry.count rt.tele kw_min_items 1;
                     if len < m then
                       add errors
                         (err ~at ~schema_at "minItems"
                            (Printf.sprintf "%d items < %d" len m)));
                match max_i with
                | None -> ()
                | Some m ->
                    Telemetry.count rt.tele kw_max_items 1;
                    if len > m then
                      add errors
                        (err ~at ~schema_at "maxItems"
                           (Printf.sprintf "%d items > %d" len m))
              end);
             if unique then begin
               Telemetry.count rt.tele kw_unique_items 1;
               let sorted = List.sort Json.Value.compare elems in
               let rec dup = function
                 | a :: (b :: _ as rest) ->
                     Json.Value.equal a b || dup rest
                 | _ -> false
               in
               if dup sorted then
                 add errors
                   (err ~at ~schema_at "uniqueItems"
                      "array elements are not unique")
             end;
             (match items_cc with
              | None -> ()
              | Some (`One cc) ->
                  Telemetry.count rt.tele kw_items 1;
                  let sat = kp schema_at "items" in
                  List.iteri
                    (fun i x ->
                      add_all errors
                        (cc rt rt.max_fuel (depth + 1) sat (ip at i) x))
                    elems
              | Some (`Many (ccs, add_cc)) ->
                  Telemetry.count rt.tele kw_items 1;
                  let isat = kp schema_at "items" in
                  let nss = Array.length ccs in
                  let rec go i xs =
                    match xs with
                    | [] -> ()
                    | x :: xs' when i < nss ->
                        add_all errors
                          (ccs.(i) rt rt.max_fuel (depth + 1) (ip isat i)
                             (ip at i) x);
                        go (i + 1) xs'
                    | rest -> (
                        (* beyond the tuple prefix: additionalItems applies *)
                        match add_cc with
                        | None -> ()
                        | Some cc ->
                            let asat = kp schema_at "additionalItems" in
                            List.iteri
                              (fun j x ->
                                add_all errors
                                  (cc rt rt.max_fuel (depth + 1) asat
                                     (ip at (i + j)) x))
                              rest)
                  in
                  go 0 elems);
             (match contains_cc with
              | None -> ()
              | Some cc ->
                  Telemetry.count rt.tele kw_contains 1;
                  let csat = kp schema_at "contains" in
                  let hits =
                    List.length
                      (List.filter
                         (fun x ->
                           cc rt rt.max_fuel (depth + 1) csat at x = [])
                         elems)
                  in
                  let lo = Option.value ~default:1 min_c in
                  (if hits < lo then
                     add errors
                       (err ~at ~schema_at "contains"
                          (Printf.sprintf
                             "%d matching elements, need at least %d" hits lo)));
                  match max_c with
                  | Some hi when hits > hi ->
                      add errors
                        (err ~at ~schema_at "maxContains"
                           (Printf.sprintf
                              "%d matching elements, allowed at most %d" hits
                              hi))
                  | _ -> ())
         | _ -> ()));
  (* object *)
  (let min_p = n.Schema.min_properties and max_p = n.Schema.max_properties in
   let required = n.Schema.required in
   let prop_names_cc = Option.map (compile_schema b) n.Schema.property_names in
   let props_tbl =
     match n.Schema.properties with
     | [] -> None
     | props ->
         let tbl = Hashtbl.create (2 * List.length props) in
         List.iter
           (fun (k, s) ->
             (* first binding wins, like the interpreter's [assoc_opt] *)
             if not (Hashtbl.mem tbl k) then
               Hashtbl.add tbl k (compile_schema b s))
           props;
         Some tbl
   in
   let pat_props =
     Array.of_list
       (List.map
          (fun (src, re, s) -> (src, re, compile_schema b s))
          n.Schema.pattern_properties)
   in
   let add_props = Option.map (compile_schema b) n.Schema.additional_properties in
   let deps =
     List.map
       (fun (trigger, dep) ->
         match dep with
         | Schema.Dep_required needed -> (trigger, Cdep_required needed)
         | Schema.Dep_schema s -> (trigger, Cdep_schema (compile_schema b s)))
       n.Schema.dependencies
   in
   if min_p <> None || max_p <> None || required <> [] || prop_names_cc <> None
      || props_tbl <> None
      || Array.length pat_props > 0
      || add_props <> None || deps <> []
   then
     addk (fun rt errors _fuel depth schema_at at v ->
         match v with
         | Json.Value.Object fields ->
             (if min_p <> None || max_p <> None then begin
                let nfields = List.length fields in
                (match min_p with
                 | None -> ()
                 | Some m ->
                     Telemetry.count rt.tele kw_min_properties 1;
                     if nfields < m then
                       add errors
                         (err ~at ~schema_at "minProperties"
                            (Printf.sprintf "%d properties < %d" nfields m)));
                match max_p with
                | None -> ()
                | Some m ->
                    Telemetry.count rt.tele kw_max_properties 1;
                    if nfields > m then
                      add errors
                        (err ~at ~schema_at "maxProperties"
                           (Printf.sprintf "%d properties > %d" nfields m))
              end);
             if required <> [] then begin
               Telemetry.count rt.tele kw_required 1;
               List.iter
                 (fun r ->
                   if not (List.mem_assoc r fields) then
                     add errors
                       (err ~at ~schema_at "required"
                          (Printf.sprintf "missing required property %S" r)))
                 required
             end;
             (match prop_names_cc with
              | None -> ()
              | Some cc ->
                  Telemetry.count rt.tele kw_property_names 1;
                  let psat = kp schema_at "propertyNames" in
                  List.iter
                    (fun (k, _) ->
                      add_all errors
                        (cc rt rt.max_fuel (depth + 1) psat (kp at k)
                           (Json.Value.String k)))
                    fields);
             (if props_tbl <> None || Array.length pat_props > 0
                 || add_props <> None
              then
                List.iter
                  (fun (k, x) ->
                    let matched = ref false in
                    (match props_tbl with
                     | None -> ()
                     | Some tbl -> (
                         match Hashtbl.find_opt tbl k with
                         | None -> ()
                         | Some cc ->
                             matched := true;
                             Telemetry.count rt.tele kw_properties 1;
                             add_all errors
                               (cc rt rt.max_fuel (depth + 1)
                                  (kp (kp schema_at "properties") k) (kp at k)
                                  x)));
                    Array.iter
                      (fun (src, re, cc) ->
                        if Re.execp re k then begin
                          matched := true;
                          Telemetry.count rt.tele kw_pattern_properties 1;
                          add_all errors
                            (cc rt rt.max_fuel (depth + 1)
                               (kp (kp schema_at "patternProperties") src)
                               (kp at k) x)
                        end)
                      pat_props;
                    if not !matched then
                      match add_props with
                      | None -> ()
                      | Some cc ->
                          Telemetry.count rt.tele kw_additional_properties 1;
                          add_all errors
                            (cc rt rt.max_fuel (depth + 1)
                               (kp schema_at "additionalProperties") (kp at k)
                               x))
                  fields);
             List.iter
               (fun (trigger, dep) ->
                 if List.mem_assoc trigger fields then begin
                   Telemetry.count rt.tele kw_dependencies 1;
                   match dep with
                   | Cdep_required needed ->
                       List.iter
                         (fun k ->
                           if not (List.mem_assoc k fields) then
                             add errors
                               (err ~at ~schema_at "dependencies"
                                  (Printf.sprintf
                                     "property %S requires property %S" trigger
                                     k)))
                         needed
                   | Cdep_schema cc ->
                       add_all errors
                         (cc rt rt.max_fuel (depth + 1)
                            (kp (kp schema_at "dependencies") trigger) at v)
                 end)
               deps
         | _ -> ()));
  (* combinators: fuel passes through unchanged (no instance input consumed) *)
  (match n.Schema.all_of with
   | [] -> ()
   | ss ->
       let ccs = Array.of_list (List.map (compile_schema b) ss) in
       addk (fun rt errors fuel depth schema_at at v ->
           Telemetry.count rt.tele kw_all_of 1;
           let asat = kp schema_at "allOf" in
           Array.iteri
             (fun i cc ->
               add_all errors (cc rt fuel (depth + 1) (ip asat i) at v))
             ccs));
  (match n.Schema.any_of with
   | [] -> ()
   | ss ->
       let ccs = Array.of_list (List.map (compile_schema b) ss) in
       addk (fun rt errors fuel depth schema_at at v ->
           Telemetry.count rt.tele kw_any_of 1;
           let sat = kp schema_at "anyOf" in
           if not (Array.exists (fun cc -> cc rt fuel (depth + 1) sat at v = []) ccs)
           then
             add errors
               { Validate.instance_at = at;
                 schema_at = sat;
                 message = "no alternative matches" }));
  (match n.Schema.one_of with
   | [] -> ()
   | ss ->
       let ccs = Array.of_list (List.map (compile_schema b) ss) in
       addk (fun rt errors fuel depth schema_at at v ->
           Telemetry.count rt.tele kw_one_of 1;
           let sat = kp schema_at "oneOf" in
           let hits =
             Array.fold_left
               (fun acc cc ->
                 if cc rt fuel (depth + 1) sat at v = [] then acc + 1 else acc)
               0 ccs
           in
           if hits <> 1 then
             add errors
               { Validate.instance_at = at;
                 schema_at = sat;
                 message =
                   Printf.sprintf "%d alternatives match (need exactly 1)" hits }));
  (match n.Schema.not_ with
   | None -> ()
   | Some s ->
       let cc = compile_schema b s in
       addk (fun rt errors fuel depth schema_at at v ->
           Telemetry.count rt.tele kw_not 1;
           if cc rt fuel (depth + 1) (kp schema_at "not") at v = [] then
             add errors
               (err ~at ~schema_at "not" "value matches the negated schema")));
  (match n.Schema.if_ with
   | None -> ()
   | Some cond ->
       let cond_cc = compile_schema b cond in
       let then_cc = Option.map (compile_schema b) n.Schema.then_ in
       let else_cc = Option.map (compile_schema b) n.Schema.else_ in
       addk (fun rt errors fuel depth schema_at at v ->
           Telemetry.count rt.tele kw_if 1;
           let branch, which =
             if cond_cc rt fuel (depth + 1) (kp schema_at "if") at v = [] then
               (then_cc, "then")
             else (else_cc, "else")
           in
           match branch with
           | None -> ()
           | Some cc ->
               add_all errors (cc rt fuel (depth + 1) (kp schema_at which) at v)));
  Array.of_list (List.rev !ks)

(* --- access analysis ----------------------------------------------------- *)

(* What the plan can observe of a value at a given schema position. The
   streaming walker prunes everything the plan provably ignores:

   - [A_skip]: the check outcome is constant in the value (boolean schemas,
     annotation-only nodes, positions no keyword ever visits). The walker
     skims the subtree at token level ({!Fastjson.Rawscan.skim_value}) and
     plants [Null]; any constant check still runs on the placeholder and
     behaves identically.
   - [A_node]: only the selected parts matter. The value's *kind* is always
     preserved (for [type] dispatch), numbers and booleans are materialized
     for real (they are free at token level), but string payloads are
     skimmed to [""] unless a string-content keyword is present, and
     object-field / array-element subtrees follow their own access.
   - [A_full]: materialize exactly ([enum]/[const] compare whole values,
     [uniqueItems] compares elements, [$ref] is conservatively opaque).

   Soundness invariant: a position's access over-approximates the demands
   of every checker closure that can receive that position's value. *)

type access = A_full | A_skip | A_node of node_access

and node_access = {
  a_str : bool;              (* string contents inspected here *)
  a_props : (string * access) list;  (* first-wins, like [props_tbl] *)
  a_other : access;          (* fields not named in [a_props] *)
  a_prefix : access list;    (* tuple prefix, from [Items_many] *)
  a_elems : access;          (* elements past the prefix *)
}

let rec access_join a b =
  match (a, b) with
  | A_full, _ | _, A_full -> A_full
  | A_skip, x | x, A_skip -> x
  | A_node x, A_node y ->
      let prop k d ps = Option.value ~default:d (List.assoc_opt k ps) in
      let keys =
        List.fold_left
          (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
          [] (x.a_props @ y.a_props)
      in
      let a_props =
        List.rev_map
          (fun k ->
            (k,
             access_join (prop k x.a_other x.a_props) (prop k y.a_other y.a_props)))
          keys
      in
      let nth xs d i = Option.value ~default:d (List.nth_opt xs i) in
      let plen = max (List.length x.a_prefix) (List.length y.a_prefix) in
      let a_prefix =
        List.init plen (fun i ->
            access_join (nth x.a_prefix x.a_elems i) (nth y.a_prefix y.a_elems i))
      in
      A_node
        { a_str = x.a_str || y.a_str;
          a_props;
          a_other = access_join x.a_other y.a_other;
          a_prefix;
          a_elems = access_join x.a_elems y.a_elems }

let rec access_of (s : Schema.t) : access =
  match s with
  | Schema.Bool_schema _ -> A_skip
  | Schema.Schema n ->
      (* [$ref] targets are opaque here (cycles would need a fixpoint);
         [enum]/[const] compare the whole value. *)
      if n.Schema.ref_ <> None || n.Schema.enum <> None || n.Schema.const <> None
      then A_full
      else begin
        let a_str =
          n.Schema.min_length <> None || n.Schema.max_length <> None
          || n.Schema.pattern <> None || n.Schema.format <> None
        in
        let a_props, a_other =
          if n.Schema.pattern_properties <> [] then
            (* a pattern may match any key: every field is reachable by an
               arbitrary subschema, so materialize them all *)
            ([], A_full)
          else
            ( List.fold_left
                (fun acc (k, s) ->
                  if List.mem_assoc k acc then acc else (k, access_of s) :: acc)
                [] n.Schema.properties
              |> List.rev,
              match n.Schema.additional_properties with
              | None -> A_skip
              | Some s -> access_of s )
        in
        let contains_a =
          match n.Schema.contains with Some s -> access_of s | None -> A_skip
        in
        let a_prefix, a_elems =
          if n.Schema.unique_items then ([], A_full)
          else
            match n.Schema.items with
            | None -> ([], contains_a)
            | Some (Schema.Items_one s) ->
                ([], access_join (access_of s) contains_a)
            | Some (Schema.Items_many ss) ->
                ( List.map (fun s -> access_join (access_of s) contains_a) ss,
                  access_join contains_a
                    (match n.Schema.additional_items with
                     | None -> A_skip
                     | Some s -> access_of s) )
        in
        let own = A_node { a_str; a_props; a_other; a_prefix; a_elems } in
        (* everything applied to the same value joins at this level *)
        let subs =
          List.map access_of
            (n.Schema.all_of @ n.Schema.any_of @ n.Schema.one_of)
          @ List.filter_map
              (Option.map access_of)
              [ n.Schema.not_; n.Schema.if_; n.Schema.then_; n.Schema.else_ ]
          @ List.filter_map
              (fun (_, dep) ->
                match dep with
                | Schema.Dep_required _ -> None
                | Schema.Dep_schema s -> Some (access_of s))
              n.Schema.dependencies
        in
        List.fold_left access_join own subs
      end

(* --- plans -------------------------------------------------------------- *)

type plan = {
  check : cc;
  access : access;
  nodes : int;
  pruned : int;
  ref_targets : int;
  cycles : int;
}

let nodes p = p.nodes
let pruned p = p.pruned
let ref_targets p = p.ref_targets
let cycles p = p.cycles

let compile ?(telemetry = Telemetry.nop) root =
  let recording = Telemetry.is_recording telemetry in
  let t0 = if recording then Telemetry.now () else 0.0 in
  match Parse.of_json root with
  | Error e ->
      (* the same error list [Validate.validate] returns on a malformed
         schema, so the engines agree even before a plan exists *)
      Error
        [ { Validate.instance_at = [];
            schema_at = e.Parse.at;
            message = e.Parse.message } ]
  | Ok s ->
      let b =
        { root;
          targets = Hashtbl.create 16;
          in_flight = [];
          st = { nodes = 0; pruned = 0; ref_targets = 0; cycles = 0 } }
      in
      let check = compile_schema b s in
      if recording then begin
        Telemetry.observe telemetry "validate.compile_ms"
          ((Telemetry.now () -. t0) *. 1000.0);
        Telemetry.gauge_max telemetry "validate.plan.nodes"
          (float_of_int b.st.nodes)
      end;
      Ok
        { check;
          access = access_of s;
          nodes = b.st.nodes;
          pruned = b.st.pruned;
          ref_targets = b.st.ref_targets;
          cycles = b.st.cycles }

let run ?(config = Validate.default_config) plan v =
  let rt =
    { formats = config.Validate.assert_formats;
      max_fuel = config.Validate.max_ref_expansions;
      max_depth = config.Validate.max_depth;
      tele = config.Validate.telemetry }
  in
  match plan.check rt rt.max_fuel 0 [] [] v with
  | [] -> Ok ()
  | es -> Error es
  | exception Stack_overflow ->
      Error
        [ { Validate.instance_at = [];
            schema_at = [];
            message = "validation overflowed the stack (schema too deep)" } ]

let is_valid ?config plan v = Result.is_ok (run ?config plan v)

(* --- streaming execution ------------------------------------------------- *)

(* Walk one document at token level, materializing only what [plan.access]
   demands and planting placeholders elsewhere, then run the ordinary plan
   on the pruned tree. The walk is a line-by-line mirror of
   [Json.Parser.parse_value] — same peek-based empty-container detection,
   same node/byte spends at the same positions, same depth checks, same
   duplicate-key resolution — so parse failures are byte-identical; the
   pruning soundness invariant (see {!access}) makes the verdicts, error
   lists, and [validate.kw.*] counters byte-identical too. *)
let walk_pruned ~options ~telemetry access src ~pos =
  let module L = Json.Lexer in
  let module P = Json.Parser in
  let lx = L.create ~pos ?max_string_bytes:options.P.max_string_bytes src in
  let tokens = ref 0 in
  let skipped = ref 0 in
  let walk_doc () =
    let nodes = ref 0 in
    let spend_node p =
      incr nodes;
      match options.P.max_nodes with
      | Some limit when !nodes > limit ->
          P.fail ~kind:(P.Budget_exceeded P.Nodes_exceeded) p
            (Printf.sprintf "document exceeds %d nodes" limit)
      | _ -> ()
    in
    let check_bytes p =
      match options.P.max_doc_bytes with
      | Some limit when p.L.offset - pos > limit ->
          P.fail ~kind:(P.Budget_exceeded P.Bytes_exceeded) p
            (Printf.sprintf "document exceeds %d bytes" limit)
      | _ -> ()
    in
    let next_full () = incr tokens; L.next lx in
    let next_skim () = incr tokens; L.next_skimming lx in
    let rec walk a depth =
      match a with
      | A_skip ->
          let before = (L.position lx).L.offset in
          Fastjson.Rawscan.skim_value lx ~dup_keys:options.P.dup_keys
            ~max_depth:options.P.max_depth ~depth ~spend_node ~check_bytes;
          skipped := !skipped + ((L.position lx).L.offset - before);
          Json.Value.Null
      | A_full | A_node _ ->
          if depth > options.P.max_depth then
            P.fail ~kind:(P.Budget_exceeded P.Depth_exceeded) (L.position lx)
              "maximum nesting depth exceeded";
          let want_str =
            match a with A_node na -> na.a_str | A_full | A_skip -> true
          in
          let tok, p = if want_str then next_full () else next_skim () in
          spend_node p;
          check_bytes p;
          walk_tok a tok p depth
    and walk_tok a tok p depth =
      match tok with
      | L.Null_tok -> Json.Value.Null
      | L.True -> Json.Value.Bool true
      | L.False -> Json.Value.Bool false
      | L.Number_tok (Json.Number.Int_lit n) -> Json.Value.Int n
      | L.Number_tok (Json.Number.Float_lit f) -> Json.Value.Float f
      | L.String_tok s -> Json.Value.String s
      | L.Lbracket -> walk_array a depth
      | L.Lbrace -> walk_object a depth
      | (L.Rbrace | L.Rbracket | L.Colon | L.Comma | L.Eof) as t ->
          P.fail p (Printf.sprintf "expected a value, got %s" (L.token_name t))
    and walk_array a depth =
      let elem_access i =
        match a with
        | A_full -> A_full
        | A_node na ->
            Option.value ~default:na.a_elems (List.nth_opt na.a_prefix i)
        | A_skip -> assert false
      in
      match L.peek lx with
      | L.Rbracket, _ ->
          ignore (next_full ());
          Json.Value.Array []
      | _ ->
          let rec elements i acc =
            let v = walk (elem_access i) (depth + 1) in
            let tok, p = next_full () in
            match tok with
            | L.Comma -> elements (i + 1) (v :: acc)
            | L.Rbracket -> List.rev (v :: acc)
            | t ->
                P.fail p
                  (Printf.sprintf "expected ',' or ']', got %s" (L.token_name t))
          in
          Json.Value.Array (elements 0 [])
    and walk_object a depth =
      let key_access k =
        match a with
        | A_full -> A_full
        | A_node na -> Option.value ~default:na.a_other (List.assoc_opt k na.a_props)
        | A_skip -> assert false
      in
      match L.peek lx with
      | L.Rbrace, _ ->
          ignore (next_full ());
          Json.Value.Object []
      | _ ->
          let rec fields acc =
            let tok, p = next_full () in
            match tok with
            | L.String_tok key -> (
                let tok, p = next_full () in
                match tok with
                | L.Colon -> (
                    let v = walk (key_access key) (depth + 1) in
                    let tok, p = next_full () in
                    match tok with
                    | L.Comma -> fields ((key, v) :: acc)
                    | L.Rbrace -> ((key, v) :: acc, p)
                    | t ->
                        P.fail p
                          (Printf.sprintf "expected ',' or '}', got %s"
                             (L.token_name t)))
                | t ->
                    P.fail p
                      (Printf.sprintf "expected ':', got %s" (L.token_name t)))
            | t ->
                P.fail p
                  (Printf.sprintf "expected a field name, got %s"
                     (L.token_name t))
          in
          let fields_rev, close_pos = fields [] in
          Json.Value.Object
            (P.apply_dup_policy options.P.dup_keys fields_rev close_pos)
    in
    let v = walk access 0 in
    check_bytes (L.position lx);
    (v, !nodes)
  in
  match P.run lx walk_doc with
  | Ok (v, nodes) ->
      let stop = (L.position lx).L.offset in
      P.emit_doc telemetry options ~bytes:(stop - pos) ~nodes;
      if Telemetry.is_recording telemetry then begin
        Telemetry.count telemetry "stream.tokens" !tokens;
        Telemetry.count telemetry "stream.skipped_bytes" !skipped
      end;
      Ok (v, stop)
  | Error _ as e -> e

let run_stream ?(config = Validate.default_config)
    ?(options = Json.Parser.default_options) ?(telemetry = Telemetry.nop) plan
    src ~pos =
  match walk_pruned ~options ~telemetry plan.access src ~pos with
  | Ok (v, stop) -> Ok (run ~config plan v, stop)
  | Error _ -> (
      (* canonical fallback: the tree parser owns failure reporting (and its
         error telemetry); if it succeeds after all, validate its tree *)
      match Json.Parser.parse_substring ~options ~telemetry src ~pos with
      | Ok (v, stop) -> Ok (run ~config plan v, stop)
      | Error e -> Error e)

(* --- fingerprint-keyed plan cache --------------------------------------- *)

(* FNV-1a 64 over the canonical printed schema document. The printer is
   deterministic, so structurally identical schema values share a plan. *)
let fingerprint root =
  let s = Json.Printer.to_string root in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* Plans are immutable, so concurrent readers are safe once a plan is
   published; the mutex only guards the table itself. Capacity is a blunt
   wholesale-reset bound: schema churn past it means recompiling, never
   unbounded growth. *)
let cache_capacity = 256
let cache : (string, plan) Hashtbl.t = Hashtbl.create 64
let cache_lock = Mutex.create ()
let memoize = Atomic.make true

let set_cache on = Atomic.set memoize on
let cache_enabled () = Atomic.get memoize

let clear_cache () =
  Mutex.lock cache_lock;
  Hashtbl.reset cache;
  Mutex.unlock cache_lock

let cache_size () =
  Mutex.lock cache_lock;
  let n = Hashtbl.length cache in
  Mutex.unlock cache_lock;
  n

let plan_for ?(telemetry = Telemetry.nop) root =
  if not (Atomic.get memoize) then compile ~telemetry root
  else begin
    let key = fingerprint root in
    let hit =
      Mutex.lock cache_lock;
      let r = Hashtbl.find_opt cache key in
      Mutex.unlock cache_lock;
      r
    in
    match hit with
    | Some plan ->
        Telemetry.count telemetry "validate.cache.hits" 1;
        if Telemetry.is_recording telemetry then
          Telemetry.gauge_max telemetry "validate.plan.nodes"
            (float_of_int plan.nodes);
        Ok plan
    | None -> (
        Telemetry.count telemetry "validate.cache.misses" 1;
        match compile ~telemetry root with
        | Error _ as e -> e
        | Ok plan ->
            Mutex.lock cache_lock;
            if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
            if not (Hashtbl.mem cache key) then Hashtbl.add cache key plan;
            Mutex.unlock cache_lock;
            Ok plan)
  end

let validate ?(config = Validate.default_config) ~root v =
  match plan_for ~telemetry:config.Validate.telemetry root with
  | Error es -> Error es
  | Ok plan -> run ~config plan v
