type config = {
  assert_formats : bool;
  max_ref_expansions : int;
  max_depth : int;
  telemetry : Telemetry.sink;
}

let default_config =
  { assert_formats = false;
    max_ref_expansions = 64;
    max_depth = 4096;
    telemetry = Telemetry.nop }

type error = {
  instance_at : Json.Pointer.t;
  schema_at : Json.Pointer.t;
  message : string;
}

let string_of_error e =
  let p t = match Json.Pointer.to_string t with "" -> "#" | s -> "#" ^ s in
  Printf.sprintf "instance %s violates schema %s: %s" (p e.instance_at)
    (p e.schema_at) e.message

(* --- formats ---------------------------------------------------------- *)

(* Format regexes are compiled, anchored, exactly once at module init:
   format checks run per string validated, and Re compilation costs orders
   of magnitude more than execution. *)
let whole src = Re.compile (Re.whole_string (Re.Pcre.re src))

let date_re = whole {|\d{4}-\d{2}-\d{2}|}
let time_re = whole {|\d{2}:\d{2}:\d{2}(\.\d+)?(Z|z|[+-]\d{2}:\d{2})|}
let datetime_re = whole {|\d{4}-\d{2}-\d{2}[Tt]\d{2}:\d{2}:\d{2}(\.\d+)?(Z|z|[+-]\d{2}:\d{2})|}
let email_re = whole {re|[A-Za-z0-9.!#$%&'*+/=?^_`{|}~-]+@[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?(?:\.[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?)+|re}
let hostname_re = whole {|[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?(?:\.[A-Za-z0-9](?:[A-Za-z0-9-]{0,61}[A-Za-z0-9])?)*|}
let ipv4_re = whole {|((25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)\.){3}(25[0-5]|2[0-4]\d|1\d\d|[1-9]?\d)|}
let uri_re = whole {|[A-Za-z][A-Za-z0-9+.-]*:[^\s]*|}
let uuid_re = whole {|[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}|}

(* RFC 4291 §2.2 textual form: 8 groups of 1-4 hex digits separated by
   [:], at most one [::] standing for one or more zero groups, optionally
   a dotted-quad IPv4 tail standing for the final two groups. A character
   class like [[0-9A-Fa-f:.]{2,45}] accepts garbage (":::::", "...."). *)
let is_hex_group g =
  let n = String.length g in
  n >= 1 && n <= 4
  && String.for_all
       (fun c ->
         (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F'))
       g

let check_ipv6 s =
  (* non-empty colon-separated groups; [] for the empty side of a "::" *)
  let groups part =
    if part = "" then Some []
    else
      let gs = String.split_on_char ':' part in
      if List.exists (String.equal "") gs then None else Some gs
  in
  (* hex groups counted as 1, a final IPv4 tail (when allowed) as 2 *)
  let count ~v4_tail gs =
    let rec go acc = function
      | [] -> Some acc
      | [ last ] when v4_tail && String.contains last '.' ->
          if Re.execp ipv4_re last then Some (acc + 2) else None
      | g :: rest -> if is_hex_group g then go (acc + 1) rest else None
    in
    go 0 gs
  in
  let double_colon =
    let n = String.length s in
    let rec find i = if i + 1 >= n then None else if s.[i] = ':' && s.[i + 1] = ':' then Some i else find (i + 1) in
    find 0
  in
  match double_colon with
  | None -> (
      match groups s with
      | None -> false
      | Some gs -> count ~v4_tail:true gs = Some 8)
  | Some i -> (
      let left = String.sub s 0 i in
      let right = String.sub s (i + 2) (String.length s - i - 2) in
      (* a second "::" (or a stray ":") surfaces as an empty group *)
      match (groups left, groups right) with
      | Some lg, Some rg -> (
          (* the IPv4 tail must be the final 32 bits of the address *)
          match (count ~v4_tail:false lg, count ~v4_tail:true rg) with
          | Some nl, Some nr -> nl + nr <= 7
          | _ -> false)
      | _ -> false)

let check_date s =
  (* calendar-valid, not just shaped like a date *)
  Re.execp date_re s
  &&
  let year = int_of_string (String.sub s 0 4) in
  let month = int_of_string (String.sub s 5 2) in
  let day = int_of_string (String.sub s 8 2) in
  let leap = (year mod 4 = 0 && year mod 100 <> 0) || year mod 400 = 0 in
  let days_in_month =
    match month with
    | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
    | 4 | 6 | 9 | 11 -> 30
    | 2 -> if leap then 29 else 28
    | _ -> 0
  in
  month >= 1 && month <= 12 && day >= 1 && day <= days_in_month

(* One closure per known format, resolved by name exactly once: the
   interpreter looks the checker up per string, a compiled plan binds it at
   plan-build time. Both go through this table, so the two engines cannot
   disagree on what a format means. *)
let format_checker = function
  | "date-time" ->
      Some
        (fun s ->
          Re.execp datetime_re s
          && check_date (String.sub s 0 (min 10 (String.length s))))
  | "date" -> Some check_date
  | "time" -> Some (fun s -> Re.execp time_re s)
  | "email" -> Some (fun s -> Re.execp email_re s)
  | "hostname" -> Some (fun s -> String.length s <= 253 && Re.execp hostname_re s)
  | "ipv4" -> Some (fun s -> Re.execp ipv4_re s)
  | "ipv6" -> Some check_ipv6
  | "uri" -> Some (fun s -> Re.execp uri_re s)
  | "uuid" -> Some (fun s -> Re.execp uuid_re s)
  | "json-pointer" -> Some (fun s -> Result.is_ok (Json.Pointer.parse s))
  | "regex" ->
      Some (fun s -> match Re.Pcre.re s with _ -> true | exception _ -> false)
  | _ -> None

let check_format name s = Option.map (fun f -> f s) (format_checker name)

(* --- context ---------------------------------------------------------- *)

type ctx = {
  config : config;
  root : Json.Value.t;                    (* the schema document *)
  cache : (string, Schema.t) Hashtbl.t;   (* $ref target -> parsed schema *)
}

exception Invalid_ref of Json.Pointer.t * string

let resolve_ref ctx ~schema_at target =
  match Hashtbl.find_opt ctx.cache target with
  | Some s ->
      Telemetry.count ctx.config.telemetry "validate.ref_cache_hits" 1;
      s
  | None ->
      let ptr_str =
        if String.equal target "#" then ""
        else if String.length target > 0 && target.[0] = '#' then
          String.sub target 1 (String.length target - 1)
        else raise (Invalid_ref (schema_at, Printf.sprintf "unsupported (non-local) $ref %S" target))
      in
      let ptr =
        match Json.Pointer.parse ptr_str with
        | Ok p -> p
        | Error msg -> raise (Invalid_ref (schema_at, msg))
      in
      let sub_json =
        match Json.Pointer.get ptr ctx.root with
        | Some j -> j
        | None ->
            raise (Invalid_ref (schema_at, Printf.sprintf "$ref target %S not found" target))
      in
      let s =
        match Parse.of_json sub_json with
        | Ok s -> s
        | Error e -> raise (Invalid_ref (schema_at, Parse.string_of_error e))
      in
      Telemetry.count ctx.config.telemetry "validate.ref_resolutions" 1;
      Hashtbl.add ctx.cache target s;
      s

(* --- helpers ---------------------------------------------------------- *)

let kp at k = Json.Pointer.append at (Json.Pointer.Key k)
let ip at i = Json.Pointer.append at (Json.Pointer.Index i)

let number_of = function
  | Json.Value.Int n -> Some (float_of_int n)
  | Json.Value.Float f -> Some f
  | _ -> None

let is_integer_value = function
  | Json.Value.Int _ -> true
  | Json.Value.Float f -> Float.is_integer f
  | _ -> false

let multiple_of_ok f m =
  (* float-tolerant divisibility *)
  let q = f /. m in
  Float.abs (q -. Float.round q) <= 1e-9 *. Float.abs q +. 1e-12

let multiple_of_value_ok v m =
  match v with
  | Json.Value.Int n
    when Float.is_integer m && m <> 0.0 && Float.abs m <= 4.0e18 ->
      (* exact path: routing a 63-bit Int through float division judges it
         on a lossy approximation (9007199254740993 "divides" by 2) *)
      n mod int_of_float m = 0
  | _ -> (
      match number_of v with Some f -> multiple_of_ok f m | None -> true)

(* UTF-8 code point count; JSON Schema string lengths are in characters. *)
let utf8_length s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then acc
    else
      let c = Char.code s.[i] in
      let step =
        if c < 0x80 then 1
        else if c < 0xE0 then 2
        else if c < 0xF0 then 3
        else 4
      in
      go (i + step) (acc + 1)
  in
  go 0 0

(* --- validation ------------------------------------------------------- *)

(* Validation returns the list of errors (empty = valid). [fuel] bounds
   consecutive $ref expansions that do not consume instance input; [depth]
   bounds the total recursion (instance nesting x schema nesting), so
   adversarially deep instances validated against recursive schemas yield a
   normal validation error instead of [Stack_overflow]. *)
let rec check ctx ~fuel ~depth ~schema_at ~at (s : Schema.t) (v : Json.Value.t) :
    error list =
  if depth > ctx.config.max_depth then
    [ { instance_at = at;
        schema_at;
        message =
          Printf.sprintf
            "maximum validation depth %d exceeded (deeply nested instance or recursive schema)"
            ctx.config.max_depth } ]
  else
    match s with
    | Schema.Bool_schema true -> []
    | Schema.Bool_schema false ->
        [ { instance_at = at; schema_at; message = "schema is false" } ]
    | Schema.Schema n -> check_node ctx ~fuel ~depth ~schema_at ~at n v

and check_node ctx ~fuel ~depth ~schema_at ~at n v =
  (* every nested application descends one level; existing call sites below
     pick the increment up through this shadowing wrapper *)
  let check ctx ~fuel ~schema_at ~at s v =
    check ctx ~fuel ~depth:(depth + 1) ~schema_at ~at s v
  in
  let tele = ctx.config.telemetry in
  (* keyword-hit counters: one increment per keyword *evaluation* (present
     in the schema node and applicable to this instance), pass or fail *)
  let kw name = Telemetry.count tele ("validate.kw." ^ name) 1 in
  Telemetry.gauge_max tele "validate.max_depth" (float_of_int depth);
  let err sk message = { instance_at = at; schema_at = kp schema_at sk; message } in
  let errors = ref [] in
  let add e = errors := e :: !errors in
  let add_all es = errors := List.rev_append es !errors in
  (* $ref: draft-7 semantics — the reference replaces the schema entirely,
     but we conjoin with sibling keywords (harmless: siblings are rare). *)
  (match n.Schema.ref_ with
   | None -> ()
   | Some target -> (
       kw "$ref";
       if fuel <= 0 then
         add (err "$ref" "reference expansion budget exhausted (cyclic schema?)")
       else
         match resolve_ref ctx ~schema_at:(kp schema_at "$ref") target with
         | s -> add_all (check ctx ~fuel:(fuel - 1) ~schema_at:(kp schema_at "$ref") ~at s v)
         | exception Invalid_ref (p, msg) ->
             add { instance_at = at; schema_at = p; message = msg }));
  (* type *)
  (match n.Schema.types with
   | None -> ()
   | Some ts ->
       kw "type";
       let matches t =
         match (t, v) with
         | `Null, Json.Value.Null -> true
         | `Boolean, Json.Value.Bool _ -> true
         | `Integer, _ -> is_integer_value v
         | `Number, (Json.Value.Int _ | Json.Value.Float _) -> true
         | `String, Json.Value.String _ -> true
         | `Array, Json.Value.Array _ -> true
         | `Object, Json.Value.Object _ -> true
         | _ -> false
       in
       if not (List.exists matches ts) then
         add
           (err "type"
              (Printf.sprintf "expected %s, got %s"
                 (String.concat " or " (List.map Schema.type_name_to_string ts))
                 (Json.Value.kind_name (Json.Value.kind v)))));
  (* enum / const *)
  (match n.Schema.enum with
   | Some vs ->
       kw "enum";
       if not (List.exists (Json.Value.equal v) vs) then
         add (err "enum" "value is not one of the enumerated values")
   | None -> ());
  (match n.Schema.const with
   | Some c ->
       kw "const";
       if not (Json.Value.equal v c) then
         add (err "const" (Printf.sprintf "expected %s" (Json.Printer.to_string c)))
   | None -> ());
  (* numeric *)
  (match number_of v with
   | None -> ()
   | Some f ->
       let bound keyword test msg = function
         | Some limit ->
             kw keyword;
             if not (test f limit) then
               add (err keyword (Printf.sprintf msg limit f))
         | None -> ()
       in
       bound "minimum" (fun f l -> f >= l) "expected >= %g, got %g" n.Schema.minimum;
       bound "maximum" (fun f l -> f <= l) "expected <= %g, got %g" n.Schema.maximum;
       bound "exclusiveMinimum" (fun f l -> f > l) "expected > %g, got %g"
         n.Schema.exclusive_minimum;
       bound "exclusiveMaximum" (fun f l -> f < l) "expected < %g, got %g"
         n.Schema.exclusive_maximum;
       (match n.Schema.multiple_of with
        | Some m ->
            kw "multipleOf";
            if not (multiple_of_value_ok v m) then
              add (err "multipleOf" (Printf.sprintf "%g is not a multiple of %g" f m))
        | None -> ()));
  (* string *)
  (match v with
   | Json.Value.String s ->
       let len = lazy (utf8_length s) in
       (match n.Schema.min_length with
        | Some m ->
            kw "minLength";
            if Lazy.force len < m then
              add (err "minLength" (Printf.sprintf "length %d < %d" (Lazy.force len) m))
        | None -> ());
       (match n.Schema.max_length with
        | Some m ->
            kw "maxLength";
            if Lazy.force len > m then
              add (err "maxLength" (Printf.sprintf "length %d > %d" (Lazy.force len) m))
        | None -> ());
       (match n.Schema.pattern with
        | Some (src, re) ->
            kw "pattern";
            if not (Re.execp re s) then
              add (err "pattern" (Printf.sprintf "%S does not match /%s/" s src))
        | None -> ());
       (match n.Schema.format with
        | Some name when ctx.config.assert_formats -> (
            kw "format";
            match check_format name s with
            | Some false ->
                add (err "format" (Printf.sprintf "%S is not a valid %s" s name))
            | Some true | None -> ())
        | _ -> ())
   | _ -> ());
  (* array *)
  (match v with
   | Json.Value.Array elems ->
       let len = List.length elems in
       (match n.Schema.min_items with
        | Some m ->
            kw "minItems";
            if len < m then add (err "minItems" (Printf.sprintf "%d items < %d" len m))
        | None -> ());
       (match n.Schema.max_items with
        | Some m ->
            kw "maxItems";
            if len > m then add (err "maxItems" (Printf.sprintf "%d items > %d" len m))
        | None -> ());
       if n.Schema.unique_items then begin
         kw "uniqueItems";
         let sorted = List.sort Json.Value.compare elems in
         let rec dup = function
           | a :: (b :: _ as rest) -> Json.Value.equal a b || dup rest
           | _ -> false
         in
         if dup sorted then add (err "uniqueItems" "array elements are not unique")
       end;
       (match n.Schema.items with
        | None -> ()
        | Some (Schema.Items_one s) ->
            kw "items";
            List.iteri
              (fun i x ->
                add_all
                  (check ctx ~fuel:ctx.config.max_ref_expansions
                     ~schema_at:(kp schema_at "items") ~at:(ip at i) s x))
              elems
        | Some (Schema.Items_many ss) ->
            kw "items";
            let rec go i ss xs =
              match (ss, xs) with
              | _, [] -> ()
              | [], rest ->
                  (* beyond the tuple prefix: additionalItems applies *)
                  (match n.Schema.additional_items with
                   | None -> ()
                   | Some s ->
                       List.iteri
                         (fun j x ->
                           add_all
                             (check ctx ~fuel:ctx.config.max_ref_expansions
                                ~schema_at:(kp schema_at "additionalItems")
                                ~at:(ip at (i + j)) s x))
                         rest)
              | s :: ss', x :: xs' ->
                  add_all
                    (check ctx ~fuel:ctx.config.max_ref_expansions
                       ~schema_at:(ip (kp schema_at "items") i) ~at:(ip at i) s x);
                  go (i + 1) ss' xs'
            in
            go 0 ss elems);
       (match n.Schema.contains with
        | None -> ()
        | Some s ->
            kw "contains";
            let hits =
              List.length
                (List.filter
                   (fun x ->
                     check ctx ~fuel:ctx.config.max_ref_expansions
                       ~schema_at:(kp schema_at "contains") ~at s x
                     = [])
                   elems)
            in
            let lo = Option.value ~default:1 n.Schema.min_contains in
            (if hits < lo then
               add (err "contains" (Printf.sprintf "%d matching elements, need at least %d" hits lo)));
            match n.Schema.max_contains with
            | Some hi when hits > hi ->
                add (err "maxContains" (Printf.sprintf "%d matching elements, allowed at most %d" hits hi))
            | _ -> ())
   | _ -> ());
  (* object *)
  (match v with
   | Json.Value.Object fields ->
       let nfields = List.length fields in
       (match n.Schema.min_properties with
        | Some m ->
            kw "minProperties";
            if nfields < m then
              add (err "minProperties" (Printf.sprintf "%d properties < %d" nfields m))
        | None -> ());
       (match n.Schema.max_properties with
        | Some m ->
            kw "maxProperties";
            if nfields > m then
              add (err "maxProperties" (Printf.sprintf "%d properties > %d" nfields m))
        | None -> ());
       if n.Schema.required <> [] then kw "required";
       List.iter
         (fun r ->
           if not (List.mem_assoc r fields) then
             add (err "required" (Printf.sprintf "missing required property %S" r)))
         n.Schema.required;
       (match n.Schema.property_names with
        | None -> ()
        | Some s ->
            kw "propertyNames";
            List.iter
              (fun (k, _) ->
                add_all
                  (check ctx ~fuel:ctx.config.max_ref_expansions
                     ~schema_at:(kp schema_at "propertyNames") ~at:(kp at k) s
                     (Json.Value.String k)))
              fields);
       List.iter
         (fun (k, x) ->
           let matched = ref false in
           (match List.assoc_opt k n.Schema.properties with
            | Some s ->
                matched := true;
                kw "properties";
                add_all
                  (check ctx ~fuel:ctx.config.max_ref_expansions
                     ~schema_at:(kp (kp schema_at "properties") k) ~at:(kp at k) s x)
            | None -> ());
           List.iter
             (fun (src, re, s) ->
               if Re.execp re k then begin
                 matched := true;
                 kw "patternProperties";
                 add_all
                   (check ctx ~fuel:ctx.config.max_ref_expansions
                      ~schema_at:(kp (kp schema_at "patternProperties") src)
                      ~at:(kp at k) s x)
               end)
             n.Schema.pattern_properties;
           if not !matched then
             match n.Schema.additional_properties with
             | None -> ()
             | Some s ->
                 kw "additionalProperties";
                 add_all
                   (check ctx ~fuel:ctx.config.max_ref_expansions
                      ~schema_at:(kp schema_at "additionalProperties") ~at:(kp at k) s x))
         fields;
       List.iter
         (fun (trigger, dep) ->
           if List.mem_assoc trigger fields then begin
             kw "dependencies";
             match dep with
             | Schema.Dep_required needed ->
                 List.iter
                   (fun k ->
                     if not (List.mem_assoc k fields) then
                       add
                         (err "dependencies"
                            (Printf.sprintf "property %S requires property %S" trigger k)))
                   needed
             | Schema.Dep_schema s ->
                 add_all
                   (check ctx ~fuel:ctx.config.max_ref_expansions
                      ~schema_at:(kp (kp schema_at "dependencies") trigger) ~at s v)
           end)
         n.Schema.dependencies
   | _ -> ());
  (* combinators *)
  if n.Schema.all_of <> [] then kw "allOf";
  List.iteri
    (fun i s ->
      add_all (check ctx ~fuel ~schema_at:(ip (kp schema_at "allOf") i) ~at s v))
    n.Schema.all_of;
  (match n.Schema.any_of with
   | [] -> ()
   | ss ->
       kw "anyOf";
       let ok =
         List.exists
           (fun s -> check ctx ~fuel ~schema_at:(kp schema_at "anyOf") ~at s v = [])
           ss
       in
       if not ok then add (err "anyOf" "no alternative matches"));
  (match n.Schema.one_of with
   | [] -> ()
   | ss ->
       kw "oneOf";
       let hits =
         List.length
           (List.filter
              (fun s -> check ctx ~fuel ~schema_at:(kp schema_at "oneOf") ~at s v = [])
              ss)
       in
       if hits <> 1 then
         add (err "oneOf" (Printf.sprintf "%d alternatives match (need exactly 1)" hits)));
  (match n.Schema.not_ with
   | Some s ->
       kw "not";
       if check ctx ~fuel ~schema_at:(kp schema_at "not") ~at s v = [] then
         add (err "not" "value matches the negated schema")
   | None -> ());
  (match n.Schema.if_ with
   | None -> ()
   | Some cond ->
       kw "if";
       let branch, which =
         if check ctx ~fuel ~schema_at:(kp schema_at "if") ~at cond v = [] then
           (n.Schema.then_, "then")
         else (n.Schema.else_, "else")
       in
       match branch with
       | None -> ()
       | Some s -> add_all (check ctx ~fuel ~schema_at:(kp schema_at which) ~at s v));
  List.rev !errors

let make_ctx config root = { config; root; cache = Hashtbl.create 16 }

(* The public API must be total on arbitrary (schema, instance) pairs:
   [Invalid_ref] is normally caught at its single raise-site consumer above,
   but this belt-and-suspenders wrapper guarantees neither it nor a residual
   [Stack_overflow] can escape as an exception. *)
let run_check ctx ~config s instance =
  match
    check ctx ~fuel:config.max_ref_expansions ~depth:0 ~schema_at:[] ~at:[] s
      instance
  with
  | [] -> Ok ()
  | es -> Error es
  | exception Invalid_ref (p, msg) ->
      Error [ { instance_at = []; schema_at = p; message = msg } ]
  | exception Stack_overflow ->
      Error
        [ { instance_at = [];
            schema_at = [];
            message = "validation overflowed the stack (schema too deep)" } ]

let validate ?(config = default_config) ~root instance =
  match Parse.of_json root with
  | Error e ->
      Error
        [ { instance_at = []; schema_at = e.Parse.at; message = e.Parse.message } ]
  | Ok s ->
      let ctx = make_ctx config root in
      run_check ctx ~config s instance

let validate_schema ?(config = default_config) s instance =
  let ctx = make_ctx config (Print.to_json s) in
  run_check ctx ~config s instance

let is_valid ?config ~root instance = Result.is_ok (validate ?config ~root instance)
