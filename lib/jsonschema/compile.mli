(** Compiled validation plans.

    A one-time lowering of a schema document into an executable plan:
    [$ref] targets resolved once into a memoized target table (cycles
    detected during lowering), per-keyword checks specialized into
    closures, trivially-true subschemas pruned. Running a plan is
    *byte-identical* to {!Validate.validate} — same verdicts, same error
    records in the same order, same [validate.kw.*] telemetry — it just
    skips the per-document schema re-parse, keyword probing, and [$ref]
    string resolution. The conformance suite and the QCheck differential
    oracle under [test/] enforce the equivalence.

    Plans are immutable and domain-safe: compile once, share across a
    domain pool. {!plan_for} adds a fingerprint-keyed cache (FNV-1a over
    the canonical printed schema) so repeated pipeline calls against the
    same schema reuse one compilation. *)

type error = Validate.error

type plan
(** An immutable compiled plan; safe to share across domains. *)

val compile :
  ?telemetry:Telemetry.sink -> Json.Value.t -> (plan, error list) result
(** Lower a schema document into a plan. [Error] carries exactly the error
    list {!Validate.validate} would return for the malformed document.
    Emits [validate.compile_ms] and [validate.plan.nodes] to [telemetry]. *)

val run :
  ?config:Validate.config -> plan -> Json.Value.t -> (unit, error list) result
(** Validate one instance. Plans are config-independent: [config] supplies
    format assertion, fuel/depth budgets, and the telemetry sink at run
    time, so one plan serves any config. *)

val is_valid : ?config:Validate.config -> plan -> Json.Value.t -> bool

val run_stream :
  ?config:Validate.config ->
  ?options:Json.Parser.options ->
  ?telemetry:Telemetry.sink ->
  plan ->
  string ->
  pos:int ->
  ((unit, error list) result * int, Json.Parser.error) result
(** Parse-and-validate one document starting at byte [pos], fused: the
    token stream is walked directly against the plan's compile-time access
    analysis, materializing only the parts some keyword can observe.
    Subtrees the plan provably ignores — properties outside the first-wins
    table when [additionalProperties] is trivially true or absent, array
    tails past [items] tuple bounds with no [additionalItems], string
    payloads with no string-content keyword — are validated and skipped at
    token level ({!Fastjson.Rawscan.skim_value}) without allocation.

    Byte-identical to [Json.Parser.parse_substring] followed by {!run}:
    same parse errors (position/message/kind and [parse.*] telemetry on
    [telemetry]), same verdicts, error lists, and [validate.kw.*] counters
    (on [config]'s sink), enforced by the differential oracle. Extra
    telemetry on success: [stream.tokens] and [stream.skipped_bytes].
    Returns the verdict and the offset one past the document. *)

val validate :
  ?config:Validate.config -> root:Json.Value.t -> Json.Value.t ->
  (unit, error list) result
(** Drop-in for {!Validate.validate} through {!plan_for} (so the plan
    cache applies) using [config.telemetry] as the compile sink. *)

(** {2 Plan shape} *)

val nodes : plan -> int
(** Subschemas lowered, including [$ref] target bodies. *)

val pruned : plan -> int
(** Trivially-true subschemas compiled to a constant check. *)

val ref_targets : plan -> int
(** Distinct [$ref] targets resolved into the plan. *)

val cycles : plan -> int
(** Back-edges found in the [$ref] graph during lowering. Cyclic plans
    still terminate per document through the runtime fuel budget — the
    budget's error is part of the interpreter-equivalence contract. *)

(** {2 Fingerprint-keyed plan cache} *)

val fingerprint : Json.Value.t -> string
(** FNV-1a 64 (hex) over the canonical printed document. *)

val plan_for :
  ?telemetry:Telemetry.sink -> Json.Value.t -> (plan, error list) result
(** {!compile} through the global cache; counts [validate.cache.hits] /
    [validate.cache.misses]. When the cache is disabled ({!set_cache}
    [false]) this is plain {!compile} and no cache counters are emitted.
    Compilation failures are never cached. *)

val set_cache : bool -> unit
(** Kill switch for the plan cache (CLI [--validate-cache on|off]).
    Affects cost only, never verdicts. *)

val cache_enabled : unit -> bool
val clear_cache : unit -> unit
val cache_size : unit -> int
