(** The JSON Schema validation judgment, following the formal semantics of
    Pezoa et al. (WWW'16).

    Every keyword is an assertion over instances of one kind and is vacuously
    satisfied by instances of other kinds; a schema object is the conjunction
    of its assertions. [$ref] resolves against the root schema document
    (["#"] and ["#/..."] pointers); infinite derivations are cut off by a
    configurable expansion budget so cyclic schemas that consume no input
    fail cleanly instead of diverging. *)

type config = {
  assert_formats : bool;
      (** treat [format] as an assertion (default: annotation only) *)
  max_ref_expansions : int;
      (** $ref expansions allowed without consuming instance input *)
  max_depth : int;
      (** total recursion bound (instance nesting × schema nesting); deeper
          derivations yield a normal validation error, never
          [Stack_overflow] (default 4096) *)
  telemetry : Telemetry.sink;
      (** observability sink (default {!Telemetry.nop}): per-keyword
          evaluation counters [validate.kw.<keyword>], [$ref] machinery
          counters [validate.ref_resolutions] / [validate.ref_cache_hits],
          and the high-water gauge [validate.max_depth] *)
}

val default_config : config

type error = {
  instance_at : Json.Pointer.t;  (** where in the instance *)
  schema_at : Json.Pointer.t;    (** which schema keyword *)
  message : string;
}

val string_of_error : error -> string

val validate :
  ?config:config -> root:Json.Value.t -> Json.Value.t -> (unit, error list) result
(** [validate ~root instance] parses schemas lazily out of the [root] schema
    document (so [$ref] targets anywhere inside it are reachable) and checks
    [instance]. Returns all violations, outermost first. *)

val validate_schema :
  ?config:config -> Schema.t -> Json.Value.t -> (unit, error list) result
(** Validate against an already-parsed schema that contains no [$ref]s (or
    only ["#"] self-references); for full [$ref] support use {!validate}. *)

val is_valid : ?config:config -> root:Json.Value.t -> Json.Value.t -> bool

val check_format : string -> string -> bool option
(** [check_format name s]: [None] when the format is unknown (per spec,
    unknown formats validate); [Some ok] otherwise. Supported: [date-time],
    [date], [time], [email], [hostname], [ipv4], [ipv6], [uri], [uuid],
    [json-pointer], [regex]. *)
