(** The JSON Schema validation judgment, following the formal semantics of
    Pezoa et al. (WWW'16).

    Every keyword is an assertion over instances of one kind and is vacuously
    satisfied by instances of other kinds; a schema object is the conjunction
    of its assertions. [$ref] resolves against the root schema document
    (["#"] and ["#/..."] pointers); infinite derivations are cut off by a
    configurable expansion budget so cyclic schemas that consume no input
    fail cleanly instead of diverging. *)

type config = {
  assert_formats : bool;
      (** treat [format] as an assertion (default: annotation only) *)
  max_ref_expansions : int;
      (** $ref expansions allowed without consuming instance input *)
  max_depth : int;
      (** total recursion bound (instance nesting × schema nesting); deeper
          derivations yield a normal validation error, never
          [Stack_overflow] (default 4096) *)
  telemetry : Telemetry.sink;
      (** observability sink (default {!Telemetry.nop}): per-keyword
          evaluation counters [validate.kw.<keyword>], [$ref] machinery
          counters [validate.ref_resolutions] / [validate.ref_cache_hits],
          and the high-water gauge [validate.max_depth] *)
}

val default_config : config

type error = {
  instance_at : Json.Pointer.t;  (** where in the instance *)
  schema_at : Json.Pointer.t;    (** which schema keyword *)
  message : string;
}

val string_of_error : error -> string

val validate :
  ?config:config -> root:Json.Value.t -> Json.Value.t -> (unit, error list) result
(** [validate ~root instance] parses schemas lazily out of the [root] schema
    document (so [$ref] targets anywhere inside it are reachable) and checks
    [instance]. Returns all violations, outermost first. *)

val validate_schema :
  ?config:config -> Schema.t -> Json.Value.t -> (unit, error list) result
(** Validate against an already-parsed schema that contains no [$ref]s (or
    only ["#"] self-references); for full [$ref] support use {!validate}. *)

val is_valid : ?config:config -> root:Json.Value.t -> Json.Value.t -> bool

val check_format : string -> string -> bool option
(** [check_format name s]: [None] when the format is unknown (per spec,
    unknown formats validate); [Some ok] otherwise. Supported: [date-time],
    [date], [time], [email], [hostname], [ipv4], [ipv6], [uri], [uuid],
    [json-pointer], [regex]. *)

(** {2 Shared semantics internals}

    The pieces of the keyword semantics that {!Compile} must reproduce bit
    for bit. Exported so the compiled engine calls the same code instead of
    a copy that could drift; not a stable public API. *)

val format_checker : string -> (string -> bool) option
(** The checker behind {!check_format}, resolved by name once so compiled
    plans can bind it at build time. [None] for unknown formats. *)

val number_of : Json.Value.t -> float option
(** Numeric view of an instance ([Int] widened to float), [None] for
    non-numbers. *)

val is_integer_value : Json.Value.t -> bool
(** The [type: integer] judgment: [Int]s and integral [Float]s. *)

val multiple_of_value_ok : Json.Value.t -> float -> bool
(** [multipleOf] divisibility: exact on [Int] against integral divisors,
    float-tolerant otherwise. *)

val utf8_length : string -> int
(** Code-point count; JSON Schema string lengths are in characters. *)
