open Jtype

let union2 a b = Types.union [ a; b ]
let with_null t = union2 t Types.null

(* type of [v.f] when v : t — Null covers absence and non-records *)
let rec field_type (t : Types.t) f : Types.t =
  match t.Types.node with
  | Types.Rec fields -> (
      match List.find_opt (fun fld -> String.equal fld.Types.fname f) fields with
      | Some fld ->
          if fld.Types.optional then with_null fld.Types.ftype else fld.Types.ftype
      | None -> Types.null)
  | Types.Union ts -> Types.union (List.map (fun t -> field_type t f) ts)
  | Types.Any -> Types.any
  | Types.Bot -> Types.bot
  | _ -> Types.null

(* type of [v[i]] *)
let rec index_type (t : Types.t) : Types.t =
  match t.Types.node with
  | Types.Arr elem -> with_null elem (* index may be out of range *)
  | Types.Union ts -> Types.union (List.map index_type ts)
  | Types.Any -> Types.any
  | Types.Bot -> Types.bot
  | _ -> Types.null

(* element type of array values of t; Bot when t can never be an array *)
let rec elements_type (t : Types.t) : Types.t =
  match t.Types.node with
  | Types.Arr elem -> elem
  | Types.Union ts -> Types.union (List.map elements_type ts)
  | Types.Any -> Types.any
  | _ -> Types.bot

(* how a type relates to numbers, for arithmetic result typing:
   [Empty] has no values at all (Bot); [Non_num] has values, none numeric *)
type numeric = All_int | All_num | Mixed | Non_num | Empty

let rec numeric_status (t : Types.t) : numeric =
  match t.Types.node with
  | Types.Int -> All_int
  | Types.Num -> All_num
  | Types.Bot -> Empty
  | Types.Any -> Mixed
  | Types.Union ts ->
      List.fold_left
        (fun acc t ->
          match (acc, numeric_status t) with
          | Empty, s | s, Empty -> s
          | All_int, All_int -> All_int
          | (All_int | All_num), (All_int | All_num) -> All_num
          | Non_num, Non_num -> Non_num
          | _ -> Mixed)
        Empty ts
  | _ -> Non_num

let rec type_expr (ctx : Types.t) (e : Ast.expr) : Types.t =
  match e with
  | Ast.Ctx -> ctx
  | Ast.Const v -> Types.of_value v
  | Ast.Field (e, f) -> field_type (type_expr ctx e) f
  | Ast.Index (e, _) -> index_type (type_expr ctx e)
  | Ast.Not _ | Ast.Is_null _ -> Types.bool
  | Ast.Record fields ->
      Types.rec_
        (List.map (fun (k, e) -> Types.field k (type_expr ctx e)) fields)
  | Ast.List es -> Types.arr (Types.union (List.map (type_expr ctx) es))
  | Ast.Binop (op, ea, eb) -> (
      match op with
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
          Types.bool
      | Ast.Add | Ast.Sub | Ast.Mul -> (
          let sa = numeric_status (type_expr ctx ea) in
          let sb = numeric_status (type_expr ctx eb) in
          match (sa, sb) with
          | (Non_num | Empty), _ | _, (Non_num | Empty) -> Types.null
          | All_int, All_int -> Types.int
          | (All_int | All_num), (All_int | All_num) -> Types.num
          | _ -> with_null Types.num)
      | Ast.Div -> (
          let sa = numeric_status (type_expr ctx ea) in
          let sb = numeric_status (type_expr ctx eb) in
          match (sa, sb) with
          | (Non_num | Empty), _ | _, (Non_num | Empty) -> Types.null
          | _ -> with_null Types.num))

let type_agg (ctx : Types.t) (agg : Ast.agg) : Types.t =
  match agg with
  | Ast.Count -> Types.int
  | Ast.Sum e ->
      (* eval: skips non-numeric values; an all-Int-or-Null operand column
         sums to Int, anything else may come out Float *)
      let t = type_expr ctx e in
      if Typecheck.subtype t (union2 Types.int Types.null) then Types.int
      else union2 Types.int Types.num
  | Ast.Avg e -> (
      match numeric_status (type_expr ctx e) with
      | All_int | All_num -> Types.num
      | Non_num | Empty -> Types.null
      | Mixed -> with_null Types.num)
  | Ast.Min e | Ast.Max e -> with_null (type_expr ctx e)

let type_stage (ctx : Types.t) (stage : Ast.stage) : Types.t =
  match stage with
  | Ast.Filter _ | Ast.Sort_by _ | Ast.Top _ -> ctx
  | Ast.Transform e -> type_expr ctx e
  | Ast.Expand None -> elements_type ctx
  | Ast.Expand (Some f) -> elements_type (field_type ctx f)
  | Ast.Group_by (key, aggs) ->
      (* an aggregate named "key" is shadowed by the group key (first
         binding wins at lookup time) *)
      let fields =
        Types.field "key" (type_expr ctx key)
        :: List.map (fun (name, agg) -> Types.field name (type_agg ctx agg)) aggs
      in
      let seen = Hashtbl.create 8 in
      Types.rec_
        (List.filter
           (fun f ->
             if Hashtbl.mem seen f.Types.fname then false
             else begin
               Hashtbl.add seen f.Types.fname ();
               true
             end)
           fields)

let type_pipeline ctx pipeline = List.fold_left type_stage ctx pipeline
