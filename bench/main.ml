(* Experiment harness: regenerates every table of EXPERIMENTS.md (E1-E20).

   The source paper is a tutorial with no tables/figures of its own; each
   experiment here operationalizes one of its quantitative claims (see
   DESIGN.md for the index). Default mode prints the tables; --micro runs
   the Bechamel micro-benchmarks (one Test per experiment workload);
   naming experiments on the command line (e.g. "e14 e3") runs only
   those. *)

open Core

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* median-of-3 timing for the wall-clock numbers *)
let timed f =
  let _ = f () in
  let samples = List.init 3 (fun _ -> snd (time f)) in
  match List.sort compare samples with
  | [ _; m; _ ] -> m
  | _ -> assert false

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let split_half xs =
  let n = List.length xs / 2 in
  let rec go i acc = function
    | rest when i = n -> (List.rev acc, rest)
    | x :: rest -> go (i + 1) (x :: acc) rest
    | [] -> (List.rev acc, [])
  in
  go 0 [] xs

(* ---------------------------------------------------------------- E1 --- *)

(* corrupt a document: flip one field's value to a shape the corpus never
   produces — an imprecise schema fails to notice *)
let corrupt (v : Json.Value.t) =
  match v with
  | Json.Value.Object ((k, _) :: rest) ->
      Json.Value.Object
        ((k, Json.Value.Object [ ("__corrupted", Json.Value.Array [ Json.Value.Null ]) ])
        :: rest)
  | v -> Json.Value.Array [ v ]

let e1 () =
  header "E1  Inference precision & size vs heterogeneity (union types matter)";
  Printf.printf "%-6s %-18s %10s %12s %8s\n" "h" "approach" "recall" "specificity" "size";
  List.iter
    (fun h ->
      let st = Datagen.rng ~seed:101 in
      let docs = Datagen.heterogeneous st ~heterogeneity:h 2000 in
      let train, test = split_half docs in
      let corrupted = List.map corrupt test in
      let frac pred xs =
        float_of_int (List.length (List.filter pred xs)) /. float_of_int (List.length xs)
      in
      let row name accepts size =
        (* recall: accepts held-out valid docs; specificity: rejects corrupted *)
        Printf.printf "%-6.2f %-18s %10.3f %12.3f %8d\n" h name (frac accepts test)
          (1.0 -. frac accepts corrupted)
          size
      in
      let param equiv name =
        let t = Inference.Parametric.infer ~equiv train in
        row name (fun v -> Jtype.Typecheck.member v t) (Jtype.Types.size t)
      in
      param Jtype.Merge.Kind "parametric-kind";
      param Jtype.Merge.Label "parametric-label";
      let spark_t = Inference.Spark.to_jtype (Inference.Spark.infer train) in
      row "spark" (fun v -> Jtype.Typecheck.member v spark_t) (Jtype.Types.size spark_t);
      let sk_root = Jsonschema.Print.to_json (Inference.Skinfer.infer train) in
      row "skinfer"
        (Jsonschema.Validate.is_valid ~root:sk_root)
        (Jsonschema.Schema.size (Inference.Skinfer.infer train));
      let mongo_t = Inference.Mongo.to_jtype (Inference.Mongo.analyze train) in
      row "mongodb-schema" (fun v -> Jtype.Typecheck.member v mongo_t)
        (Jtype.Types.size mongo_t))
    [ 0.0; 0.25; 0.5; 1.0 ];
  print_endline "shape: parametric keeps recall ~1.0 AND high specificity; spark's";
  print_endline "       string-fallback loses recall, skinfer's widening loses specificity"

(* ---------------------------------------------------------------- E2 --- *)

let e2 () =
  header "E2  Kind vs label equivalence: conciseness/precision trade-off (tweets)";
  let st = Datagen.rng ~seed:102 in
  let docs = Datagen.tweets st 2000 in
  let train, test = split_half docs in
  Printf.printf "%-8s %10s %14s %14s\n" "equiv" "size" "precision-in" "precision-out";
  List.iter
    (fun (name, equiv) ->
      let t = Inference.Parametric.infer ~equiv train in
      Printf.printf "%-8s %10d %14.3f %14.3f\n" name (Jtype.Types.size t)
        (Inference.Parametric.precision t train)
        (Inference.Parametric.precision t test))
    [ ("kind", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ];
  print_endline "shape: label is bigger (more precise in-sample); kind generalizes"

(* ---------------------------------------------------------------- E3 --- *)

let e3 () =
  header "E3  Distributed (merge-tree) inference: shape-independence & time";
  let st = Datagen.rng ~seed:103 in
  let docs = Datagen.tweets st 20000 in
  let reference = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let t_seq =
    timed (fun () -> ignore (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs))
  in
  Printf.printf "%-12s %10s %8s\n" "partitions" "time(ms)" "same?";
  Printf.printf "%-12s %10.1f %8s\n" "sequential" (t_seq *. 1e3) "ref";
  List.iter
    (fun p ->
      let result = ref Jtype.Types.bot in
      let t =
        timed (fun () ->
            result :=
              Inference.Parametric.infer_partitioned ~equiv:Jtype.Merge.Kind
                ~partitions:p docs)
      in
      Printf.printf "%-12d %10.1f %8s\n" p (t *. 1e3)
        (if Jtype.Types.equal !result reference then "yes" else "NO!"))
    [ 1; 4; 16; 64 ];
  print_endline "shape: identical result for every partitioning (assoc/comm merge)"

(* ---------------------------------------------------------------- E4 --- *)

let e4 () =
  header "E4  Validation throughput across schema languages (flat event records)";
  let st = Datagen.rng ~seed:104 in
  let docs = Datagen.events st ~fields:8 2000 in
  (* the same contract in four languages *)
  let jtype_schema = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let json_schema = Jtype.Interop.to_schema_json jtype_schema in
  let joi_schema =
    Joi.object_
      (List.init 8 (fun j ->
           let field = Printf.sprintf "f%d" j in
           match j mod 4 with
           | 0 -> (field, Joi.(integer |> required))
           | 1 -> (field, Joi.(string |> required))
           | 2 -> (field, Joi.(boolean |> required))
           | _ -> (field, Joi.(number |> required))))
  in
  let jsound_schema =
    match
      Jsound.parse_string
        {|{"f0": "integer", "f1": "string", "f2": "boolean", "f3": "decimal",
           "f4": "integer", "f5": "string", "f6": "boolean", "f7": "decimal"}|}
    with
    | Ok s -> s
    | Error m -> failwith m
  in
  let n = List.length docs in
  let bench name f =
    List.iter (fun v -> if not (f v) then failwith (name ^ ": rejected a valid doc")) docs;
    let t = timed (fun () -> List.iter (fun v -> ignore (f v)) docs) in
    Printf.printf "%-22s %12.0f docs/s\n" name (float_of_int n /. t)
  in
  Printf.printf "%-22s %12s\n" "validator" "throughput";
  bench "jtype membership" (fun v -> Jtype.Typecheck.member v jtype_schema);
  bench "json schema" (fun v -> Jsonschema.Validate.is_valid ~root:json_schema v);
  bench "joi" (fun v -> Joi.is_valid joi_schema v);
  bench "jsound" (fun v -> Jsound.is_valid jsound_schema v);
  print_endline "shape: all linear in document size; structural checkers lead"

(* ---------------------------------------------------------------- E5 --- *)

let e5 () =
  header "E5  Mison projection: speedup vs number of projected fields";
  let st = Datagen.rng ~seed:105 in
  let total_fields = 24 in
  let docs = Datagen.events st ~fields:total_fields 10000 in
  let text = Datagen.to_ndjson docs in
  let mb = float_of_int (String.length text) /. 1e6 in
  let t_full =
    timed (fun () ->
        match
          Json.Stream.fold_documents text ~init:0 ~f:(fun acc doc ->
              acc + (match Json.Value.member "f0" doc with Some _ -> 1 | None -> 0))
        with
        | Ok n -> ignore n
        | Error _ -> failwith "parse error")
  in
  Printf.printf "%-24s %10s %10s %8s\n" "parser" "time(ms)" "MB/s" "speedup";
  Printf.printf "%-24s %10.1f %10.1f %8s\n" "full parse" (t_full *. 1e3) (mb /. t_full) "1.0x";
  List.iter
    (fun k ->
      let fields = List.init k (fun i -> Printf.sprintf "f%d" (i * (total_fields / k))) in
      let t =
        timed (fun () ->
            match Fastjson.Mison.project_ndjson { Fastjson.Mison.fields } text with
            | Ok rows -> ignore rows
            | Error m -> failwith m)
      in
      Printf.printf "%-24s %10.1f %10.1f %7.1fx\n"
        (Printf.sprintf "mison (%d/%d fields)" k total_fields)
        (t *. 1e3) (mb /. t) (t_full /. t))
    [ 1; 2; 4; 8; 16; 24 ];
  (* ablation: speculation on/off, on wide records where the wanted fields
     sit late — without the learned ordinal every record re-scans the keys
     before them *)
  let stw = Datagen.rng ~seed:1056 in
  let wide_text = Datagen.to_ndjson (Datagen.events stw ~fields:64 5000) in
  let wmb = float_of_int (String.length wide_text) /. 1e6 in
  let wide_lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' wide_text) in
  let wanted = [ "f58"; "f61" ] in
  let t_nospec =
    timed (fun () ->
        List.iter
          (fun line ->
            let t = Fastjson.Mison.create { Fastjson.Mison.fields = wanted } in
            match Fastjson.Mison.parse_string t line with
            | Ok _ -> ()
            | Error m -> failwith m)
          wide_lines)
  in
  let t_spec =
    timed (fun () ->
        match Fastjson.Mison.project_ndjson { Fastjson.Mison.fields = wanted } wide_text with
        | Ok _ -> ()
        | Error m -> failwith m)
  in
  Printf.printf "%-24s %10.1f %10.1f %8s\n" "64f: late 2f, no spec"
    (t_nospec *. 1e3) (wmb /. t_nospec) "-";
  Printf.printf "%-24s %10.1f %10.1f %7.1fx\n" "64f: late 2f, speculation"
    (t_spec *. 1e3) (wmb /. t_spec) (t_nospec /. t_spec);
  (* nested-path projection: the leveled index reaches into subobjects of
     documents whose bulk (a long numeric body) is never parsed *)
  let st2 = Datagen.rng ~seed:1055 in
  let nested_docs =
    List.map
      (fun doc ->
        match doc with
        | Json.Value.Object fields ->
            Json.Value.Object
              [ ("meta", Json.Value.Object fields);
                ("body",
                 Json.Value.Array (List.init 60 (fun i -> Json.Value.Int (i * 7)))) ]
        | v -> v)
      (Datagen.events st2 ~fields:8 10000)
  in
  let nested_text = Datagen.to_ndjson nested_docs in
  let nmb = float_of_int (String.length nested_text) /. 1e6 in
  let t_nested_full =
    timed (fun () ->
        ignore
          (Json.Stream.fold_documents nested_text ~init:0 ~f:(fun acc doc ->
               match Json.Value.member "meta" doc with
               | Some u -> (match Json.Value.member "f1" u with Some _ -> acc + 1 | None -> acc)
               | None -> acc)))
  in
  let t_nested =
    timed (fun () ->
        match
          Fastjson.Mison.project_ndjson
            { Fastjson.Mison.fields = [ "meta.f1" ] } nested_text
        with
        | Ok _ -> ()
        | Error m -> failwith m)
  in
  Printf.printf "%-24s %10.1f %10.1f %8s\n" "full parse (meta+body)" (t_nested_full *. 1e3)
    (nmb /. t_nested_full) "1.0x";
  Printf.printf "%-24s %10.1f %10.1f %7.1fx\n" "mison (meta.f1)"
    (t_nested *. 1e3) (nmb /. t_nested) (t_nested_full /. t_nested);
  print_endline "shape: speedup decays as selectivity grows (less pruning);";
  print_endline "       leveled colons reach nested fields without parsing parents"

(* ---------------------------------------------------------------- E6 --- *)

let e6 () =
  header "E6  Fad.js speculation: stable vs shifting access patterns";
  let st = Datagen.rng ~seed:106 in
  let docs = Datagen.events st ~fields:16 10000 in
  let lines = List.map Json.Printer.to_string docs in
  let run pattern_of =
    let d = Fastjson.Fadjs.create () in
    let t =
      timed (fun () ->
          List.iteri
            (fun i line ->
              match Fastjson.Fadjs.decode d line with
              | Ok doc -> List.iter (fun f -> ignore (Fastjson.Fadjs.get doc f)) (pattern_of i)
              | Error m -> failwith m)
            lines)
    in
    (t, Fastjson.Fadjs.stats d)
  in
  let t_full =
    timed (fun () ->
        List.iter (fun line -> ignore (Json.Parser.parse_exn line)) lines)
  in
  let stable, s_stable = run (fun _ -> [ "f2"; "f5" ]) in
  let shifting, s_shift =
    run (fun i -> if i mod 100 < 50 then [ "f2"; "f5" ] else [ "f9"; "f13" ])
  in
  Printf.printf "%-22s %10s %8s %10s\n" "mode" "time(ms)" "deopts" "speedup";
  Printf.printf "%-22s %10.1f %8s %10s\n" "full parse" (t_full *. 1e3) "-" "1.0x";
  Printf.printf "%-22s %10.1f %8d %9.1fx\n" "stable pattern" (stable *. 1e3)
    s_stable.Fastjson.Fadjs.deopts (t_full /. stable);
  Printf.printf "%-22s %10.1f %8d %9.1fx\n" "shifting pattern" (shifting *. 1e3)
    s_shift.Fastjson.Fadjs.deopts (t_full /. shifting);
  print_endline "shape: stable patterns deopt once; shifts cost deopts but stay ahead"

(* ---------------------------------------------------------------- E7 --- *)

let e7 () =
  header "E7  Schema-aware translation: size & throughput (tweets)";
  let st = Datagen.rng ~seed:107 in
  let docs = Datagen.tweets st 2000 in
  let json_text = Datagen.to_ndjson docs in
  let n = List.length docs in
  let t = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs in
  let avro_schema = Translate.Avro.of_jtype ~name:"tweet" t in
  let spark = Inference.Spark.infer docs in
  let avro_bytes =
    match Translate.Avro.encode_all avro_schema docs with
    | Ok b -> b
    | Error m -> failwith m
  in
  let table =
    match Translate.Columnar.shred ~schema:spark docs with
    | Ok t -> t
    | Error m -> failwith m
  in
  let col_bytes = Translate.Columnar.encode table in
  let t_avro_enc = timed (fun () -> ignore (Translate.Avro.encode_all avro_schema docs)) in
  let t_avro_dec = timed (fun () -> ignore (Translate.Avro.decode_all avro_schema avro_bytes)) in
  let t_col_enc =
    timed (fun () ->
        ignore (Translate.Columnar.shred ~schema:spark docs);
        ignore (Translate.Columnar.encode table))
  in
  let t_col_dec =
    timed (fun () ->
        match Translate.Columnar.decode ~schema:spark col_bytes with
        | Ok t -> ignore (Translate.Columnar.assemble t)
        | Error m -> failwith m)
  in
  let t_json_parse =
    timed (fun () ->
        ignore (Json.Stream.fold_documents json_text ~init:0 ~f:(fun a _ -> a + 1)))
  in
  (match Translate.Avro.decode_all avro_schema avro_bytes with
   | Ok back when List.length back = n -> ()
   | _ -> failwith "avro roundtrip failed");
  Printf.printf "%-10s %14s %14s %14s\n" "format" "bytes/record" "encode(ms)" "decode(ms)";
  Printf.printf "%-10s %14.1f %14s %14.1f\n" "json"
    (float_of_int (String.length json_text) /. float_of_int n)
    "-" (t_json_parse *. 1e3);
  Printf.printf "%-10s %14.1f %14.1f %14.1f\n" "avro"
    (float_of_int (String.length avro_bytes) /. float_of_int n)
    (t_avro_enc *. 1e3) (t_avro_dec *. 1e3);
  Printf.printf "%-10s %14.1f %14.1f %14.1f\n" "columnar"
    (float_of_int (String.length col_bytes) /. float_of_int n)
    (t_col_enc *. 1e3) (t_col_dec *. 1e3);
  print_endline "shape: binary formats well under JSON text size; decode beats re-parsing"

(* ---------------------------------------------------------------- E8 --- *)

let e8 () =
  header "E8  Skeletons: conciseness vs missed paths (skewed structures)";
  Printf.printf "%-6s %14s %12s %14s %10s\n" "zipf" "skeleton-size" "full-size" "path-coverage" "dropped";
  List.iter
    (fun zipf ->
      let st = Datagen.rng ~seed:108 in
      let docs = Datagen.skewed_structures st ~shapes:20 ~zipf 3000 in
      let sk = Inference.Skeleton.build ~min_support:0.05 ~max_groups:5 docs in
      let full = Inference.Skeleton.build ~min_support:0.0 ~max_groups:10000 docs in
      Printf.printf "%-6.1f %14d %12d %14.2f %10d\n" zipf
        (Inference.Skeleton.size sk)
        (Inference.Skeleton.size full)
        (Inference.Skeleton.path_coverage sk docs)
        sk.Inference.Skeleton.dropped)
    [ 0.5; 1.0; 2.0 ];
  print_endline "shape: higher skew => tiny skeleton covers most docs, yet paths go missing"

(* ---------------------------------------------------------------- E9 --- *)

let e9 () =
  header "E9  Relational normalization from FDs (denormalized orders)";
  Printf.printf "%-8s %8s %8s %12s %12s %10s\n" "orders" "FDs" "tables" "cells-before" "cells-after" "reduction";
  List.iter
    (fun n ->
      let st = Datagen.rng ~seed:109 in
      let docs = Datagen.orders st n in
      let r = Inference.Relational.normalize ~name:"orders" docs in
      Printf.printf "%-8d %8d %8d %12d %12d %9.0f%%\n" n
        (List.length r.Inference.Relational.fds)
        (List.length r.Inference.Relational.tables)
        r.Inference.Relational.cells_before r.Inference.Relational.cells_after
        (100.
        *. (1.
           -. float_of_int r.Inference.Relational.cells_after
              /. float_of_int r.Inference.Relational.cells_before)))
    [ 500; 2000 ];
  print_endline "shape: reduction grows with collection size (dimensions amortize)"

(* --------------------------------------------------------------- E10 --- *)

let e10 () =
  header "E10 Counting types: overhead over plain inference (tweets)";
  let st = Datagen.rng ~seed:110 in
  let docs = Datagen.tweets st 5000 in
  let t_plain =
    timed (fun () -> ignore (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs))
  in
  let t_counting =
    timed (fun () ->
        ignore (Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind docs))
  in
  let c = Inference.Parametric.infer_counting ~equiv:Jtype.Merge.Kind docs in
  Printf.printf "%-18s %10s\n" "variant" "time(ms)";
  Printf.printf "%-18s %10.1f\n" "plain" (t_plain *. 1e3);
  Printf.printf "%-18s %10.1f   (%.2fx)\n" "counting" (t_counting *. 1e3)
    (t_counting /. t_plain);
  (match Jtype.Counting.field_probability c [ "entities" ] with
   | Some p ->
       Printf.printf "sample annotation: P(entities) = %.3f over %d tweets\n" p
         (Jtype.Counting.count c)
   | None -> ());
  print_endline "shape: counting costs a small constant factor, adds cardinalities"


(* --------------------------------------------------------------- E11 --- *)

let e11 () =
  header "E11 Query output-schema inference (Jaql-style): static vs dynamic";
  let st = Datagen.rng ~seed:111 in
  let docs = Datagen.tweets st 5000 in
  let input_t =
    Jtype.Merge.merge_all ~equiv:Jtype.Merge.Kind (List.map Jtype.Types.of_value docs)
  in
  let queries =
    [ "filter $.retweet_count > 2500";
      "transform {id: $.id, lang: $.lang, score: $.retweet_count + $.favorite_count}";
      "expand entities";
      "group by $.lang into {n: count, reach: sum $.retweet_count, top: max $.favorite_count}";
      "filter $.retweet_count > 1000 | transform $.user | group by $.verified into {n: count}" ]
  in
  Printf.printf "%-12s %12s %12s %10s %8s\n" "query" "static(us)" "run(ms)" "out-size" "sound?";
  List.iteri
    (fun i q ->
      let pipeline = Query.Parse.pipeline_exn q in
      let out_t = ref Jtype.Types.bot in
      let t_static =
        timed (fun () -> out_t := Query.Typing.type_pipeline input_t pipeline)
      in
      let outputs = ref [] in
      let t_run = timed (fun () -> outputs := Query.Eval.run pipeline docs) in
      let sound =
        List.for_all (fun v -> Jtype.Typecheck.member v !out_t) !outputs
      in
      Printf.printf "%-12s %12.1f %12.1f %10d %8s\n"
        (Printf.sprintf "Q%d" (i + 1))
        (t_static *. 1e6) (t_run *. 1e3) (Jtype.Types.size !out_t)
        (if sound then "yes" else "NO!"))
    queries;
  print_endline "shape: static inference is ~1000x cheaper than running the query,";
  print_endline "       and every dynamic output inhabits the inferred schema"

(* --------------------------------------------------------------- E12 --- *)

let e12 () =
  header "E12 Schema discovery & profiling (clusters + decision-tree rules)";
  let st = Datagen.rng ~seed:112 in
  let bucket =
    List.concat [ Datagen.tweets st 300; Datagen.articles st 200; Datagen.open_data st 100 ]
  in
  let clusters = Inference.Discovery.discover ~threshold:0.35 bucket in
  Printf.printf "mixed bucket (600 docs, 3 entity kinds): %d clusters found\n"
    (List.length clusters);
  List.iteri
    (fun i (c : Inference.Discovery.cluster) ->
      Printf.printf "  cluster %d: %4d docs, schema size %d\n" i
        c.Inference.Discovery.size
        (Jtype.Types.size c.Inference.Discovery.schema))
    clusters;
  (* profiling: does the tree recover the value->structure rule? *)
  let train = Datagen.tickets st 600 in
  let test = Datagen.tickets st 300 in
  let p = Inference.Profile.profile ~max_depth:3 train in
  Printf.printf "ticket profiling: %d variants, train acc %.3f, held-out acc %.3f\n"
    (List.length p.Inference.Profile.variants)
    p.Inference.Profile.training_accuracy
    (Inference.Profile.accuracy p test);
  (match p.Inference.Profile.tree with
   | Inference.Profile.Split { feature; _ } ->
       Printf.printf "root split: %s\n" feature
   | Inference.Profile.Leaf _ -> print_endline "root split: (none)");
  print_endline "shape: clusters recover the entity kinds; the tree finds the"
  ;
  print_endline "       channel field that determines ticket structure"

(* --------------------------------------------------------------- E13 --- *)

let e13 () =
  header "E13 Resilient ingestion under fault injection (chaos harness)";
  let st = Datagen.rng ~seed:113 in
  let docs = Datagen.tweets st 2000 in
  let text = Datagen.to_ndjson docs in
  (* byte budget below the 64 KiB chaos pad so oversize faults register as
     typed budget kills rather than slipping through *)
  let budget =
    { Resilient.default_budget with Resilient.max_doc_bytes = Some 16384 }
  in
  Printf.printf "%-6s %7s %7s %7s %7s %7s %12s\n"
    "rate" "faults" "ok" "quar" "killed" "dups" "ingest(ms)";
  List.iter
    (fun rate ->
      let o = Chaos.corrupt ~seed:1300 ~rate text in
      let r = ref Resilient.(ingest ~budget "") in
      let t = timed (fun () -> r := Resilient.ingest ~budget o.Chaos.text) in
      let rep = !r.Resilient.report in
      Printf.printf "%-6.2f %7d %7d %7d %7d %7d %12.1f\n" rate
        (List.length o.Chaos.injected)
        rep.Resilient.ok rep.Resilient.quarantined rep.Resilient.budget_killed
        o.Chaos.duplicated (t *. 1e3))
    [ 0.0; 0.01; 0.05; 0.1; 0.25; 0.5 ];
  (* the Mison fast path under the same faults: projection survives, and the
     degradation policy's full-parse fallbacks stay proportional to damage *)
  let o = Chaos.corrupt ~seed:1300 ~rate:0.1 text in
  let p = Resilient.project ~budget ~fields:[ "id"; "lang" ] o.Chaos.text in
  Printf.printf
    "fast path @10%%: %d rows, %d dead, %d full-parse fallbacks of %d records\n"
    (List.length p.Resilient.rows)
    (List.length p.Resilient.proj_dead)
    p.Resilient.mison.Fastjson.Mison.full_parse_fallbacks
    p.Resilient.mison.Fastjson.Mison.records;
  (* budget overhead on a clean corpus: strict parse vs budgeted ingest *)
  let t_plain = timed (fun () -> ignore (Json.Parser.parse_many text)) in
  let t_guard = timed (fun () -> ignore (Resilient.ingest ~budget text)) in
  Printf.printf "clean corpus: plain parse %.1f ms, budgeted ingest %.1f ms (%.2fx)\n"
    (t_plain *. 1e3) (t_guard *. 1e3) (t_guard /. t_plain);
  print_endline "shape: quarantine tracks the injected corruption one-for-one,";
  print_endline "       budgets catch every oversized record, and the guarded"
  ;
  print_endline "       path costs only a small constant factor over raw parsing"

(* --------------------------------------------------------------- E14 --- *)

let e14 () =
  header "E14 Sharded parallel ingestion & inference (domain pool)";
  let st = Datagen.rng ~seed:114 in
  let docs = Datagen.events st ~fields:8 100_000 in
  let text = Datagen.to_ndjson docs in
  let mb = float_of_int (String.length text) /. 1e6 in
  Printf.printf "input: %d documents, %.1f MB NDJSON; recommended domains: %d\n"
    (List.length docs) mb
    (Domain.recommended_domain_count ());
  let reference = Jtype.Types.to_string (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs) in
  let t1 = ref 1.0 in
  Printf.printf "%-6s %18s %8s %9s %7s\n" "jobs" "ingest+infer(ms)" "MB/s" "speedup" "same?";
  List.iter
    (fun jobs ->
      let out = ref (None, Resilient.(ingest "")) in
      let t = timed (fun () -> out := Pipeline.infer_ndjson_resilient ~jobs text) in
      if jobs = 1 then t1 := t;
      let same =
        match !out with
        | Some inf, r ->
            r.Resilient.report.Resilient.ok = List.length docs
            && Jtype.Types.to_string inf.Pipeline.jtype = reference
        | None, _ -> false
      in
      Printf.printf "%-6d %18.1f %8.1f %8.2fx %7s\n" jobs (t *. 1e3) (mb /. t)
        (!t1 /. t)
        (if jobs = 1 then "ref" else if same then "yes" else "NO!"))
    [ 1; 2; 4; 8 ];
  (* shard-parallel validation of the same batch against its inferred schema *)
  let root = Jtype.Interop.to_schema_json (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind docs) in
  let tv1 = timed (fun () -> ignore (Parallel.validate ~jobs:1 ~root docs)) in
  let tv4 = timed (fun () -> ignore (Parallel.validate ~jobs:4 ~root docs)) in
  Printf.printf "validation: jobs=1 %.1f ms, jobs=4 %.1f ms (%.2fx)\n"
    (tv1 *. 1e3) (tv4 *. 1e3) (tv1 /. tv4);
  print_endline "shape: the merge is associative/commutative, so every job count returns";
  print_endline "       the identical type; speedup tracks the available cores"

(* --------------------------------------------------------------- E15 --- *)

let e15 () =
  header "E15 Telemetry: Mison pruned-bytes ratio under selective projection";
  let st = Datagen.rng ~seed:115 in
  let docs = Datagen.events st ~fields:16 20_000 in
  let text = Datagen.to_ndjson docs in
  let mb = float_of_int (String.length text) /. 1e6 in
  Printf.printf "input: %d wide event records (16 fields), %.1f MB NDJSON\n"
    (List.length docs) mb;
  Printf.printf "%-24s %12s %12s %8s %10s\n" "projection" "materialized" "pruned"
    "ratio" "fallbacks";
  let counter snap name =
    match List.assoc_opt name snap.Telemetry.counters with Some n -> n | None -> 0
  in
  let ratios =
    List.map
      (fun fields ->
        let sink = Telemetry.create () in
        let p = Resilient.project ~telemetry:sink ~fields text in
        assert (p.Resilient.proj_report.Resilient.ok = List.length docs);
        let snap = Telemetry.snapshot sink in
        let input = counter snap "mison.input_bytes" in
        let materialized = counter snap "mison.bytes_materialized" in
        let pruned = counter snap "mison.bytes_pruned" in
        (* the invariant the qcheck property also pins down *)
        assert (pruned + materialized <= input);
        assert (input = String.length text - List.length docs (* newlines *));
        let ratio = float_of_int pruned /. float_of_int input in
        Printf.printf "%-24s %11.2fMB %11.2fMB %7.1f%% %10d\n"
          (String.concat "," fields)
          (float_of_int materialized /. 1e6)
          (float_of_int pruned /. 1e6)
          (100.0 *. ratio)
          (counter snap "mison.full_parse_fallbacks");
        ratio)
      [ [ "f0" ]; [ "f0"; "f5" ]; [ "f0"; "f5"; "f10"; "f15" ] ]
  in
  (* the experiment's claim: a selective projection prunes a strictly
     positive share of the input bytes *)
  assert (List.for_all (fun r -> r > 0.0) ratios);
  let span snap path =
    List.find_opt (fun s -> s.Telemetry.sp_path = path) snap.Telemetry.spans
  in
  let sink = Telemetry.create () in
  ignore (Resilient.project ~telemetry:sink ~fields:[ "f0" ] text);
  (match span (Telemetry.snapshot sink) "mison.index_build" with
   | Some s ->
       Printf.printf
         "structural-index build: %d records, %.1f ms total (%.2f us/record)\n"
         s.Telemetry.sp_calls (s.Telemetry.sp_total_s *. 1e3)
         (s.Telemetry.sp_total_s /. float_of_int s.Telemetry.sp_calls *. 1e6)
   | None -> print_endline "structural-index span missing!");
  print_endline "claim: the colon index lets a selective query materialize only the";
  print_endline "       projected fields; pruned-bytes ratio > 0 on every projection"

(* ---------------------------------------------------------------- E16 --- *)

let e16 () =
  header "E16 Supervision: ingestion throughput under injected worker faults";
  let st = Datagen.rng ~seed:116 in
  let docs = Datagen.events st ~fields:16 20_000 in
  let text = Datagen.to_ndjson docs in
  let total = List.length docs in
  let jobs = 4 in
  let mb = float_of_int (String.length text) /. 1e6 in
  Printf.printf
    "input: %d event records, %.1f MB NDJSON; %d shards; faults: seeded \
     worker-fault plans (Chaos.worker_faults, rate 0.5)\n"
    total mb jobs;
  Printf.printf "%-34s %8s %9s %9s %9s %8s\n" "scenario" "retries" "attempts"
    "poisoned" "docs ok" "MB/s";
  let run_case name ~retries ~inject () =
    let policy =
      { Supervisor.default_policy with
        Supervisor.max_attempts = 1 + retries;
        (* measure retry cost, not sleep cost *)
        base_backoff_ms = 0.0;
        max_backoff_ms = 0.0;
        degrade_threshold = None }
    in
    let go () =
      match
        Pipeline.ingest_ndjson_supervised ~policy ?inject ~jobs text
      with
      | Ok r -> r
      | Error e -> failwith e
    in
    let r, sup = go () in
    let secs = timed (fun () -> ignore (go ())) in
    let s = sup.Pipeline.sup_stats in
    Printf.printf "%-34s %8d %9d %9d %9d %8.1f\n" name retries
      s.Supervisor.attempts s.Supervisor.poisoned r.Resilient.report.Resilient.ok
      (mb /. secs);
    (r, s)
  in
  let transient = Chaos.worker_faults ~seed:116 ~rate:0.5 () in
  let permanent = Chaos.worker_faults ~seed:116 ~rate:0.5 ~permanent:true () in
  let clean, _ = run_case "no faults" ~retries:0 ~inject:None () in
  let dropped, _ =
    run_case "transient faults, no retry" ~retries:0 ~inject:(Some transient) ()
  in
  let recovered, rs =
    run_case "transient faults, 2 retries" ~retries:2 ~inject:(Some transient) ()
  in
  let poisoned, ps =
    run_case "permanent faults, 2 retries" ~retries:2 ~inject:(Some permanent) ()
  in
  (* the experiment's claims, asserted not eyeballed: transient faults cost
     retries but zero data under a >=2-attempt policy; permanent faults
     quarantine exactly the faulted shards and nothing else *)
  assert (clean.Resilient.report.Resilient.ok = total);
  assert (dropped.Resilient.report.Resilient.ok < total);
  assert (recovered.Resilient.report.Resilient.ok = total);
  assert (rs.Supervisor.poisoned = 0 && rs.Supervisor.retries > 0);
  assert (ps.Supervisor.poisoned > 0);
  assert (
    poisoned.Resilient.report.Resilient.poisoned = ps.Supervisor.poisoned);
  print_endline "claim: per-shard retry turns transient worker faults into";
  print_endline "       latency instead of data loss; permanent faults cost only";
  print_endline "       the poisoned shards' documents, never the job"

(* ---------------------------------------------------------------- E17 --- *)

(* Pre-kernel baseline: the plain-variant type representation with deep
   structural compare and unmemoized fusion, as the repo shipped before
   the hash-consed kernel. Same port as the test suite's differential
   oracle (test_kernel.ml), so the speedup is measured against the real
   previous algorithm, not a strawman. *)
module Prekernel = struct
  type t =
    | Bot | Null | Bool | Int | Num | Str
    | Arr of t
    | Rec of field list
    | Union of t list
    | Any

  and field = { fname : string; optional : bool; ftype : t }

  let rank = function
    | Bot -> 0 | Null -> 1 | Bool -> 2 | Int -> 3 | Num -> 4 | Str -> 5
    | Arr _ -> 6 | Rec _ -> 7 | Union _ -> 8 | Any -> 9

  let rec compare a b =
    match (a, b) with
    | Arr x, Arr y -> compare x y
    | Rec xs, Rec ys -> compare_fields xs ys
    | Union xs, Union ys -> compare_list xs ys
    | _ -> Stdlib.compare (rank a) (rank b)

  and compare_list xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = compare x y in
        if c <> 0 then c else compare_list xs' ys'

  and compare_fields xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs', y :: ys' ->
        let c = String.compare x.fname y.fname in
        if c <> 0 then c
        else
          let c = Bool.compare x.optional y.optional in
          if c <> 0 then c
          else
            let c = compare x.ftype y.ftype in
            if c <> 0 then c else compare_fields xs' ys'

  let union ts =
    let rec flatten acc = function
      | [] -> acc
      | Union us :: rest -> flatten (flatten acc us) rest
      | Bot :: rest -> flatten acc rest
      | t :: rest -> flatten (t :: acc) rest
    in
    let flat = flatten [] ts in
    if List.exists (fun t -> t = Any) flat then Any
    else
      match List.sort_uniq compare flat with
      | [] -> Bot
      | [ t ] -> t
      | ts -> Union ts

  let rec of_value (v : Json.Value.t) : t =
    match v with
    | Json.Value.Null -> Null
    | Json.Value.Bool _ -> Bool
    | Json.Value.Int _ -> Int
    | Json.Value.Float _ -> Num
    | Json.Value.String _ -> Str
    | Json.Value.Array vs -> Arr (union (List.map of_value vs))
    | Json.Value.Object fields ->
        let seen = Hashtbl.create 8 in
        let uniq =
          List.filter
            (fun (k, _) ->
              if Hashtbl.mem seen k then false
              else (Hashtbl.add seen k (); true))
            (List.rev fields)
        in
        let fields =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (List.map (fun (k, x) -> (k, of_value x)) uniq)
        in
        Rec
          (List.map
             (fun (k, ft) -> { fname = k; optional = false; ftype = ft })
             fields)

  let rec merge_fields ~equiv xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> List.map (fun f -> { f with optional = true }) rest
    | (x :: xs' as xl), (y :: ys' as yl) ->
        let c = String.compare x.fname y.fname in
        if c = 0 then
          { fname = x.fname;
            optional = x.optional || y.optional;
            ftype = merge_canonical ~equiv x.ftype y.ftype }
          :: merge_fields ~equiv xs' ys'
        else if c < 0 then { x with optional = true } :: merge_fields ~equiv xs' yl
        else { y with optional = true } :: merge_fields ~equiv xl ys'

  and same_labels xs ys =
    List.length xs = List.length ys
    && List.for_all2 (fun x y -> String.equal x.fname y.fname) xs ys

  and fuse ~equiv a b =
    match (a, b) with
    | Any, _ | _, Any -> Some Any
    | Null, Null -> Some Null
    | Bool, Bool -> Some Bool
    | Int, Int -> Some Int
    | Str, Str -> Some Str
    | (Num | Int), (Num | Int) -> Some Num
    | Arr x, Arr y -> Some (Arr (merge_canonical ~equiv x y))
    | Rec xs, Rec ys -> (
        match (equiv : Jtype.Merge.equiv) with
        | Kind -> Some (Rec (merge_fields ~equiv xs ys))
        | Label ->
            if same_labels xs ys then Some (Rec (merge_fields ~equiv xs ys))
            else None)
    | _ -> None

  and insert ~equiv branch acc =
    let rec go seen = function
      | [] -> List.rev (branch :: seen)
      | candidate :: rest -> (
          match fuse ~equiv candidate branch with
          | Some fused -> insert ~equiv fused (List.rev_append seen rest)
          | None -> go (candidate :: seen) rest)
    in
    go [] acc

  and merge_canonical ~equiv a b =
    let branches = function Union ts -> ts | Bot -> [] | t -> [ t ] in
    union
      (List.fold_left
         (fun acc t -> insert ~equiv t acc)
         [] (branches a @ branches b))

  and push_down ~equiv t =
    match t with
    | Bot | Null | Bool | Int | Num | Str | Any -> t
    | Arr x -> Arr (simplify ~equiv x)
    | Rec fields ->
        Rec (List.map (fun f -> { f with ftype = simplify ~equiv f.ftype }) fields)
    | Union ts -> union (List.map (push_down ~equiv) ts)

  and simplify ~equiv t =
    match t with
    | Union ts ->
        let ts = List.map (push_down ~equiv) ts in
        union (List.fold_left (fun acc t -> insert ~equiv t acc) [] ts)
    | t -> push_down ~equiv t

  let merge_all ~equiv = function
    | [] -> Bot
    | t :: ts ->
        List.fold_left
          (fun acc t -> merge_canonical ~equiv acc (simplify ~equiv t))
          (simplify ~equiv t) ts

  let infer ~equiv docs = merge_all ~equiv (List.map of_value docs)

  let rec to_string t =
    match t with
    | Bot -> "Bot" | Null -> "Null" | Bool -> "Bool" | Int -> "Int"
    | Num -> "Num" | Str -> "Str" | Any -> "Any"
    | Arr Bot -> "[]"
    | Arr t -> "[" ^ to_string t ^ "]"
    | Rec fields ->
        let f { fname; optional; ftype } =
          Printf.sprintf "%s%s: %s" fname (if optional then "?" else "")
            (to_string ftype)
        in
        "{" ^ String.concat ", " (List.map f fields) ^ "}"
    | Union ts -> String.concat " + " (List.map to_string_atom ts)

  and to_string_atom t =
    match t with Union _ -> "(" ^ to_string t ^ ")" | _ -> to_string t
end

let e17 () =
  header "E17 Hash-consed kernel: memoized fusion vs pre-kernel merge";
  let union_heavy =
    let st = Datagen.rng ~seed:117 in
    Datagen.heterogeneous st ~heterogeneity:1.0 20_000
  in
  let wide =
    let st = Datagen.rng ~seed:1170 in
    Datagen.events st ~fields:64 3_000
  in
  let kget snap name =
    match List.assoc_opt name snap with Some n -> n | None -> 0
  in
  let rate_pct before after stem =
    let d n = kget after n - kget before n in
    let hits = d (stem ^ ".hits") and misses = d (stem ^ ".misses") in
    if hits + misses = 0 then 0.0
    else 100.0 *. float_of_int hits /. float_of_int (hits + misses)
  in
  Printf.printf "%-14s %-6s %9s %9s %9s %8s %7s %7s\n" "corpus" "equiv"
    "seed kd/s" "cold kd/s" "warm kd/s" "speedup" "merge%" "fuse%";
  let speedups =
    List.concat_map
      (fun (cname, docs) ->
        let n = float_of_int (List.length docs) in
        List.map
          (fun (ename, equiv) ->
            let seed_t = Prekernel.infer ~equiv docs in
            let seed_s = timed (fun () -> ignore (Prekernel.infer ~equiv docs)) in
            (* cold: every timed sample starts from empty fusion caches *)
            let cold_s =
              timed (fun () ->
                  Jtype.Merge.clear_caches ();
                  ignore (Inference.Parametric.infer ~equiv docs))
            in
            let warm_s =
              timed (fun () -> ignore (Inference.Parametric.infer ~equiv docs))
            in
            (* cache hit rates over one cold run *)
            Jtype.Merge.clear_caches ();
            let before = Jtype.Kernel.totals () in
            let kernel_t = Inference.Parametric.infer ~equiv docs in
            let after = Jtype.Kernel.totals () in
            (* differential check: kernel and baseline infer the same type *)
            assert (
              String.equal
                (Jtype.Types.to_string kernel_t)
                (Prekernel.to_string seed_t));
            let speedup = seed_s /. cold_s in
            Printf.printf "%-14s %-6s %9.1f %9.1f %9.1f %7.1fx %6.1f%% %6.1f%%\n"
              cname ename (n /. seed_s /. 1e3) (n /. cold_s /. 1e3)
              (n /. warm_s /. 1e3) speedup
              (rate_pct before after "kernel.merge")
              (rate_pct before after "kernel.fuse");
            ((cname, ename), speedup))
          [ ("kind", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ])
      [ ("union-heavy", union_heavy); ("wide-64", wide) ]
  in
  (* sharded merge keeps the speedup and stays byte-identical *)
  Printf.printf "\n%-14s %-6s %9s %9s %10s\n" "corpus" "equiv" "j1 kd/s"
    "j4 kd/s" "identical";
  List.iter
    (fun (cname, docs) ->
      let n = float_of_int (List.length docs) in
      List.iter
        (fun (ename, equiv) ->
          let run jobs = Parallel.infer_type ~equiv ~jobs docs in
          let t1 = run 1 in
          let printed = Jtype.Types.to_string t1 in
          let same =
            List.for_all
              (fun jobs -> String.equal printed (Jtype.Types.to_string (run jobs)))
              [ 2; 4; 8 ]
          in
          assert same;
          let s1 = timed (fun () -> ignore (run 1)) in
          let s4 = timed (fun () -> ignore (run 4)) in
          Printf.printf "%-14s %-6s %9.1f %9.1f %10s\n" cname ename
            (n /. s1 /. 1e3) (n /. s4 /. 1e3)
            (if same then "yes" else "NO"))
        [ ("kind", Jtype.Merge.Kind); ("label", Jtype.Merge.Label) ])
    [ ("union-heavy", union_heavy); ("wide-64", wide) ];
  print_endline
    "note: these corpora are merge-bound, so sharding pays domain handoff +";
  print_endline
    "      cross-domain re-interning without parse work to amortize it; the";
  print_endline
    "      kernel still cuts the jobs=4 wall clock ~3.6x vs pre-kernel";
  (* the acceptance claim: >= 2x merge-phase throughput on the
     union-heavy corpus at jobs=1, measured cold *)
  List.iter
    (fun ((cname, ename), speedup) ->
      if String.equal cname "union-heavy" then
        if speedup < 2.0 then
          failwith
            (Printf.sprintf "E17: union-heavy/%s speedup %.2fx < 2.0x" ename
               speedup))
    speedups;
  print_endline "claim: hash-consing makes type identity O(1) and the memoized";
  print_endline "       fusion cache short-circuits repeated merges, >=2x the";
  print_endline "       pre-kernel merge phase on union-heavy corpora; results";
  print_endline "       stay byte-identical at every --jobs level"

(* ---------------------------------------------------------------- E18 --- *)

let e18 () =
  header "E18 Compiled validation plans: lowered engine vs tree-walk interpreter";
  (* format-heavy: six asserted formats per record, 1-in-50 invalid *)
  let format_schema =
    Json.Parser.parse_exn
      {|{"type": "object",
         "required": ["ts", "ip", "mail", "id", "uri", "day"],
         "properties": {
           "ts":   {"type": "string", "format": "date-time"},
           "ip":   {"type": "string", "format": "ipv4"},
           "mail": {"type": "string", "format": "email"},
           "id":   {"type": "string", "format": "uuid"},
           "uri":  {"type": "string", "format": "uri"},
           "day":  {"type": "string", "format": "date"}}}|}
  in
  let format_docs =
    List.init 20_000 (fun i ->
        let open Json.Value in
        Object
          [ ("ts", String (Printf.sprintf "2024-01-02T03:%02d:%02dZ" (i mod 60) (i mod 60)));
            ("ip", String (if i mod 50 = 7 then "999.1.2.3"
                           else Printf.sprintf "10.%d.%d.%d" (i mod 256) (i / 256 mod 256) (i mod 250)));
            ("mail", String (Printf.sprintf "user%d@example.com" i));
            ("id", String (Printf.sprintf "123e4567-e89b-12d3-a456-4266%08d" (i mod 100000000)));
            ("uri", String (Printf.sprintf "https://example.com/x/%d" i));
            ("day", String (Printf.sprintf "2024-03-%02d" ((i mod 28) + 1))) ])
  in
  (* $ref-recursive: a tree grammar applied to ~120-node trees *)
  let tree_schema =
    Json.Parser.parse_exn
      {|{"definitions": {"tree": {"type": "object", "required": ["v"],
                                  "properties": {"v": {"type": "integer", "minimum": 0},
                                                 "kids": {"type": "array",
                                                          "items": {"$ref": "#/definitions/tree"}}},
                                  "additionalProperties": false}},
         "$ref": "#/definitions/tree"}|}
  in
  let rec tree lvl i =
    let open Json.Value in
    let v = if lvl = 0 && i mod 40 = 3 then String "poison" else Int (abs i) in
    if lvl = 0 then Object [ ("v", v) ]
    else
      Object
        [ ("v", v);
          ("kids", Array (List.init 3 (fun k -> tree (lvl - 1) ((i * 3) + k)))) ]
  in
  let tree_docs = List.init 2_000 (fun i -> tree 4 i) in
  (* wide flat records: 64 typed properties, schema produced by inference *)
  let wide_clean =
    let st = Datagen.rng ~seed:118 in
    Datagen.events st ~fields:64 10_000
  in
  let wide_schema =
    Jtype.Interop.to_schema_json
      (Inference.Parametric.infer ~equiv:Jtype.Merge.Kind wide_clean)
  in
  let wide_docs =
    List.mapi (fun i v -> if i mod 100 = 0 then corrupt v else v) wide_clean
  in
  let render failures =
    String.concat "\n"
      (List.map
         (fun (i, es) ->
           String.concat "\n"
             (List.map
                (fun e -> Printf.sprintf "%d: %s" i (Jsonschema.Validate.string_of_error e))
                es))
         failures)
  in
  Printf.printf "%-14s %12s %12s %12s %8s %10s\n" "corpus" "docs"
    "interp kd/s" "plan kd/s" "speedup" "identical";
  let speedups =
    List.map
      (fun (cname, root, config, docs) ->
        let n = List.length docs in
        let plan =
          match Jsonschema.Compile.compile root with
          | Ok p -> p
          | Error _ -> failwith ("E18: " ^ cname ^ " schema must compile")
        in
        (* byte-identity gate: same failure list from both engines through the
           sharded path, at every job count *)
        let reference = Parallel.validate ~config ~compiled:false ~root docs in
        let same =
          List.for_all
            (fun jobs ->
              String.equal (render reference)
                (render (Parallel.validate ~config ~compiled:true ~jobs ~root docs)))
            [ 1; 4; 8 ]
        in
        assert (reference <> []);
        let t_i =
          timed (fun () ->
              List.iter
                (fun v -> ignore (Jsonschema.Validate.validate ~config ~root v))
                docs)
        in
        let t_c =
          timed (fun () ->
              List.iter (fun v -> ignore (Jsonschema.Compile.run ~config plan v)) docs)
        in
        let speedup = t_i /. t_c in
        Printf.printf "%-14s %12d %12.1f %12.1f %7.2fx %10s\n" cname n
          (float_of_int n /. t_i /. 1e3)
          (float_of_int n /. t_c /. 1e3)
          speedup
          (if same then "yes" else "NO!");
        if not same then
          failwith ("E18: " ^ cname ^ ": compiled/interpreted reports diverge");
        (cname, speedup))
      [ ("format-heavy", format_schema,
         { Jsonschema.Validate.default_config with assert_formats = true },
         format_docs);
        ("ref-recursive", tree_schema, Jsonschema.Validate.default_config,
         tree_docs);
        ("wide-64", wide_schema, Jsonschema.Validate.default_config, wide_docs) ]
  in
  (* the acceptance claim: >= 1.5x on the $ref-recursive and format-heavy
     corpora, where plan lowering kills per-document resolution and regex
     re-binding *)
  List.iter
    (fun (cname, speedup) ->
      if cname <> "wide-64" && speedup < 1.5 then
        failwith (Printf.sprintf "E18: %s speedup %.2fx < 1.5x" cname speedup))
    speedups;
  print_endline "claim: lowering the schema once (refs resolved to plan nodes,";
  print_endline "       formats/regexes/enum sets bound at compile time) beats the";
  print_endline "       per-document tree walk >=1.5x on ref- and format-bound";
  print_endline "       corpora; reports stay byte-identical at every --jobs level"

(* ---------------------------------------------------------------- E19 --- *)

(* machine-readable results: --json out.json writes one record per measured
   variant, so CI can diff throughput without scraping the tables *)
let json_records : Json.Value.t list ref = ref []

let record_bench ~name ~variant ~wall_ms ~mb_per_s =
  json_records :=
    Json.Value.Object
      [ ("name", Json.Value.String name);
        ("variant", Json.Value.String variant);
        ("wall_ms", Json.Value.Float wall_ms);
        ("mb_per_s", Json.Value.Float mb_per_s) ]
    :: !json_records

let e19 () =
  header "E19 Streaming fused engine: token-level executors vs tree materialization";
  let ingest_fp (r : Resilient.ingest) =
    String.concat "\n"
      (Json.Printer.to_string (Resilient.report_to_json r.Resilient.report)
      :: List.map
           (fun d -> Json.Printer.to_string (Resilient.dead_letter_to_json d))
           r.Resilient.dead)
  in
  (* --- inference: union-heavy, format-heavy strings, wide records ------- *)
  let union_text =
    let st = Datagen.rng ~seed:119 in
    Datagen.to_ndjson (Datagen.heterogeneous st ~heterogeneity:1.0 30_000)
  in
  let tweet_text =
    let st = Datagen.rng ~seed:1190 in
    Datagen.to_ndjson (Datagen.tweets st 10_000)
  in
  let wide_text =
    let st = Datagen.rng ~seed:1191 in
    Datagen.to_ndjson (Datagen.events st ~fields:64 8_000)
  in
  Printf.printf "%-22s %8s %12s %12s %8s %10s\n" "inference corpus" "MB"
    "tree MB/s" "stream MB/s" "speedup" "identical";
  let infer_speedups =
    List.map
      (fun (cname, text) ->
        let mb = float_of_int (String.length text) /. 1e6 in
        let fp engine jobs =
          let inferred, ing =
            Pipeline.infer_ndjson_resilient ~engine ~jobs text
          in
          (match inferred with
          | Some i -> Jtype.Types.to_string i.Pipeline.jtype
          | None -> "none")
          ^ "\n" ^ ingest_fp ing
        in
        (* byte-identity across engines at every job count *)
        let reference = fp `Tree 1 in
        let same =
          List.for_all
            (fun jobs ->
              String.equal reference (fp `Tree jobs)
              && String.equal reference (fp `Streaming jobs))
            [ 1; 4; 8 ]
        in
        if not same then
          failwith ("E19: " ^ cname ^ ": engines diverge on inference");
        (* the identity sweep above churned the major heap; normalize the
           GC state so it doesn't bleed into either engine's timing *)
        Gc.compact ();
        let t_tree =
          timed (fun () ->
              ignore (Pipeline.infer_ndjson_resilient ~engine:`Tree text))
        in
        let t_stream =
          timed (fun () ->
              ignore (Pipeline.infer_ndjson_resilient ~engine:`Streaming text))
        in
        record_bench ~name:("e19/infer-" ^ cname) ~variant:"tree"
          ~wall_ms:(t_tree *. 1e3) ~mb_per_s:(mb /. t_tree);
        record_bench ~name:("e19/infer-" ^ cname) ~variant:"streaming"
          ~wall_ms:(t_stream *. 1e3) ~mb_per_s:(mb /. t_stream);
        Printf.printf "%-22s %8.1f %12.1f %12.1f %7.2fx %10s\n" cname mb
          (mb /. t_tree) (mb /. t_stream) (t_tree /. t_stream) "yes";
        (cname, t_tree /. t_stream))
      [ ("union-heavy", union_text);
        ("format-heavy(tweets)", tweet_text);
        ("wide-64", wide_text) ]
  in
  (* --- validation: plans that observe only a slice of each document ----- *)
  let tweet_schema =
    Json.Parser.parse_exn
      {|{"type": "object", "required": ["id", "text"],
         "properties": {"id": {"type": "integer"},
                        "text": {"type": "string", "minLength": 1}}}|}
  in
  let wide_schema =
    Json.Parser.parse_exn
      {|{"type": "object", "required": ["f0", "f1"],
         "properties": {"f0": {"type": "integer"},
                        "f1": {"type": "string"}}}|}
  in
  let format_schema =
    Json.Parser.parse_exn
      {|{"type": "object", "required": ["ts", "mail"],
         "properties": {"ts": {"type": "string", "format": "date-time"},
                        "mail": {"type": "string", "format": "email"}}}|}
  in
  let format_text =
    Datagen.to_ndjson
      (List.init 10_000 (fun i ->
           let open Json.Value in
           Object
             [ ("ts",
                String
                  (Printf.sprintf "2024-01-02T03:%02d:%02dZ" (i mod 60)
                     (i mod 60)));
               ("mail", String (Printf.sprintf "user%d@example.com" i));
               ("pad",
                Array
                  (List.init 40 (fun k ->
                       String (Printf.sprintf "filler-%d-%d" i k)))) ]))
  in
  Printf.printf "\n%-22s %8s %12s %12s %8s %10s\n" "validation corpus" "MB"
    "tree MB/s" "stream MB/s" "speedup" "identical";
  let validate_speedups =
    List.map
      (fun (cname, root, config, text) ->
        let mb = float_of_int (String.length text) /. 1e6 in
        let render (ing, failures) =
          ingest_fp ing ^ "\n"
          ^ String.concat "\n"
              (List.map
                 (fun (i, es) ->
                   Printf.sprintf "%d: %s" i
                     (String.concat " | "
                        (List.map Jsonschema.Validate.string_of_error es)))
                 failures)
        in
        let run engine jobs =
          render (Pipeline.validate_ndjson ~config ~engine ~jobs ~root text)
        in
        let reference = run `Tree 1 in
        let same =
          List.for_all
            (fun jobs ->
              String.equal reference (run `Tree jobs)
              && String.equal reference (run `Streaming jobs))
            [ 1; 4; 8 ]
        in
        if not same then
          failwith ("E19: " ^ cname ^ ": engines diverge on validation");
        Gc.compact ();
        let t_tree =
          timed (fun () ->
              ignore (Pipeline.validate_ndjson ~config ~engine:`Tree ~root text))
        in
        let t_stream =
          timed (fun () ->
              ignore
                (Pipeline.validate_ndjson ~config ~engine:`Streaming ~root text))
        in
        record_bench ~name:("e19/validate-" ^ cname) ~variant:"tree"
          ~wall_ms:(t_tree *. 1e3) ~mb_per_s:(mb /. t_tree);
        record_bench ~name:("e19/validate-" ^ cname) ~variant:"streaming"
          ~wall_ms:(t_stream *. 1e3) ~mb_per_s:(mb /. t_stream);
        Printf.printf "%-22s %8.1f %12.1f %12.1f %7.2fx %10s\n" cname mb
          (mb /. t_tree) (mb /. t_stream) (t_tree /. t_stream) "yes";
        (cname, t_tree /. t_stream))
      [ ("wide-64/2-props", wide_schema, Jsonschema.Validate.default_config,
         wide_text);
        ("tweets/2-props", tweet_schema, Jsonschema.Validate.default_config,
         tweet_text);
        ("format-heavy", format_schema,
         { Jsonschema.Validate.default_config with assert_formats = true },
         format_text) ]
  in
  (* --- printer buffer reuse: the NDJSON emit hot paths (checkpoint
     journals, dead-letter reports) render into one retained buffer;
     assert the reuse actually removes the per-document allocations ------ *)
  (* Float-free documents: [Number.print_float]'s shortest-roundtrip search
     allocates the same under both emit strategies and would swamp the
     buffer-reuse delta this assertion is about. *)
  let emit_docs =
    List.init 2_000 (fun i ->
        Json.Value.Object
          (List.init 32 (fun f ->
               ( Printf.sprintf "f%02d" f,
                 if f mod 3 = 0 then Json.Value.Int ((i * 31) + f)
                 else if f mod 3 = 1 then
                   Json.Value.String (Printf.sprintf "value-%d-%d" i f)
                 else Json.Value.Bool ((i + f) mod 2 = 0) ))))
  in
  let minor f =
    let before = Gc.minor_words () in
    f ();
    Gc.minor_words () -. before
  in
  let buf = Buffer.create 4096 in
  let emit_reused () =
    List.iter
      (fun d ->
        Buffer.clear buf;
        Json.Printer.to_buffer buf d;
        Buffer.add_char buf '\n';
        ignore (Buffer.length buf))
      emit_docs
  in
  emit_reused ();
  (* warm: buffer at steady-state capacity *)
  let words_reused = minor emit_reused in
  let words_fresh =
    minor (fun () ->
        List.iter (fun d -> ignore (Json.Printer.to_string d ^ "\n")) emit_docs)
  in
  Printf.printf
    "\nprinter emit (%d docs): fresh strings %.0f minor words, reused buffer \
     %.0f (%.1fx fewer)\n"
    (List.length emit_docs) words_fresh words_reused
    (words_fresh /. Float.max 1.0 words_reused);
  if words_reused >= words_fresh then
    failwith "E19: buffer reuse failed to reduce printer allocations";
  (* the acceptance claims: >= 2x inference and >= 1.5x validation
     throughput, each on at least two corpora, reports byte-identical *)
  let winners thr xs = List.filter (fun (_, s) -> s >= thr) xs in
  let infer_wins = winners 2.0 infer_speedups in
  let validate_wins = winners 1.5 validate_speedups in
  if List.length infer_wins < 2 then
    failwith
      (Printf.sprintf "E19: inference >=2x on only %d corpora"
         (List.length infer_wins));
  if List.length validate_wins < 2 then
    failwith
      (Printf.sprintf "E19: validation >=1.5x on only %d corpora"
         (List.length validate_wins));
  print_endline "claim: fusing the fold with the lexer removes the value-tree";
  print_endline "       allocation entirely (inference) and skims every subtree";
  print_endline "       the plan provably ignores (validation); reports stay";
  print_endline "       byte-identical to the tree engine at every --jobs level"

(* ---------------------------------------------------------------- E20 --- *)

let e20 () =
  header "E20 Containment check: type-vs-plan decision vs full re-validation";
  (* the question `check` answers — "does this corpus still fit the
     schema?" — re-validation answers in O(|data|); the containment
     decision answers it in O(|type|·|plan|), so its cost must not move
     as the corpus grows *)
  let sizes = [ 2_000; 10_000; 30_000 ] in
  let corpora =
    List.map
      (fun n ->
        let st = Datagen.rng ~seed:120 in
        (n, Datagen.to_ndjson (Datagen.orders st n)))
      sizes
  in
  let schema =
    match Pipeline.infer_ndjson (snd (List.hd corpora)) with
    | Ok i -> i.Pipeline.json_schema
    | Error e -> failwith e
  in
  Printf.printf "%-12s %8s %12s %12s %10s %9s\n" "corpus" "MB" "validate ms"
    "contain ms" "verdict" "speedup";
  let rows =
    List.map
      (fun (n, text) ->
        let cname = Printf.sprintf "orders-%dk" (n / 1000) in
        let mb = float_of_int (String.length text) /. 1e6 in
        let t =
          match Pipeline.infer_ndjson text with
          | Ok i -> i.Pipeline.jtype
          | Error e -> failwith e
        in
        let verdict, contain_s =
          time (fun () -> Jtype.Contain.check ~root:schema t)
        in
        let contain_s =
          (* median-of-3 like [timed], reusing the first sample's verdict *)
          List.nth
            (List.sort compare
               (contain_s
               :: List.init 2 (fun _ ->
                      snd (time (fun () -> Jtype.Contain.check ~root:schema t)))))
            1
        in
        (match verdict with
        | Jtype.Contain.Contained -> ()
        | v ->
            failwith
              (Printf.sprintf "E20: %s vs own schema: %s" cname
                 (Jtype.Contain.verdict_to_string v)));
        let validate_s =
          timed (fun () -> ignore (Pipeline.validate_ndjson ~root:schema text))
        in
        let speedup = validate_s /. contain_s in
        Printf.printf "%-12s %8.1f %12.2f %12.3f %10s %8.0fx\n" cname mb
          (validate_s *. 1e3) (contain_s *. 1e3) "contained" speedup;
        record_bench ~name:("e20/" ^ cname) ~variant:"validate"
          ~wall_ms:(validate_s *. 1e3) ~mb_per_s:(mb /. validate_s);
        record_bench ~name:("e20/" ^ cname) ~variant:"contain"
          ~wall_ms:(contain_s *. 1e3) ~mb_per_s:(mb /. contain_s);
        (n, contain_s, speedup))
      corpora
  in
  (* drift: the corpus type against a schema that retyped a field — the
     verdict must carry a concrete witness both engines reject *)
  let drift_schema =
    Json.Value.Object
      [ ("type", Json.Value.String "object");
        ( "properties",
          Json.Value.Object
            [ ( "order_id",
                Json.Value.Object
                  [ ("type", Json.Value.String "string") ] ) ] ) ]
  in
  let t30 =
    match Pipeline.infer_ndjson (snd (List.nth corpora 2)) with
    | Ok i -> i.Pipeline.jtype
    | Error e -> failwith e
  in
  (match Jtype.Contain.check ~root:drift_schema t30 with
  | Jtype.Contain.Not_contained w ->
      let tree = Jsonschema.Validate.is_valid ~root:drift_schema w in
      let compiled =
        match Jsonschema.Compile.compile drift_schema with
        | Ok plan -> Jsonschema.Compile.is_valid plan w
        | Error _ -> failwith "E20: drift schema must compile"
      in
      if tree || compiled then failwith "E20: witness accepted by an engine";
      Printf.printf "drift witness: %s (rejected by both engines)\n"
        (Json.Printer.to_string w)
  | v ->
      failwith
        (Printf.sprintf "E20: drift must be refuted, got %s"
           (Jtype.Contain.verdict_to_string v)));
  (* acceptance: the decision beats re-validation by >=5x on the largest
     corpus, and its cost does not scale with the data *)
  (match List.rev rows with
  | (_, _, speedup) :: _ when speedup < 5.0 ->
      failwith (Printf.sprintf "E20: speedup %.1fx < 5x" speedup)
  | _ -> ());
  print_endline "claim: containment decides schema drift from the inferred type";
  print_endline "       and the compiled plan alone — O(|type|*|plan|), constant";
  print_endline "       in corpus size — and every refutation carries a witness";
  print_endline "       value both validation engines reject"

(* --- bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let st = Datagen.rng ~seed:999 in
  let tweets = Datagen.tweets st 100 in
  let text = Datagen.to_ndjson tweets in
  let one = List.hd tweets in
  let one_text = Json.Printer.to_string one in
  let jtype_schema = Inference.Parametric.infer ~equiv:Jtype.Merge.Kind tweets in
  let json_schema = Jtype.Interop.to_schema_json jtype_schema in
  let avro_schema = Translate.Avro.of_jtype ~name:"tweet" jtype_schema in
  let tests =
    [ Test.make ~name:"e0/parse-tweet" (Staged.stage (fun () -> Json.Parser.parse_exn one_text));
      Test.make ~name:"e0/print-tweet" (Staged.stage (fun () -> Json.Printer.to_string one));
      Test.make ~name:"e1/infer-100-tweets"
        (Staged.stage (fun () -> Inference.Parametric.infer ~equiv:Jtype.Merge.Kind tweets));
      Test.make ~name:"e4/validate-jsonschema"
        (Staged.stage (fun () -> Jsonschema.Validate.is_valid ~root:json_schema one));
      Test.make ~name:"e4/validate-jtype"
        (Staged.stage (fun () -> Jtype.Typecheck.member one jtype_schema));
      Test.make ~name:"e5/index-build"
        (Staged.stage (fun () -> Fastjson.Structural_index.build one_text));
      Test.make ~name:"e5/project-2-fields"
        (Staged.stage (fun () ->
             Fastjson.Mison.project_ndjson { Fastjson.Mison.fields = [ "id"; "lang" ] } text));
      Test.make ~name:"e7/avro-encode"
        (Staged.stage (fun () -> Translate.Avro.encode avro_schema one));
    ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Printf.printf "%-28s %16s\n" "micro-benchmark" "ns/run";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "%-28s %16.1f\n" name est
          | _ -> Printf.printf "%-28s %16s\n" name "n/a")
        results)
    tests

let experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16);
    ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20) ]

let () =
  let micro_mode = Array.exists (fun a -> a = "--micro") Sys.argv in
  (* --json out.json: machine-readable records for the measured variants *)
  let json_path =
    let rec go i =
      if i >= Array.length Sys.argv - 1 then None
      else if Sys.argv.(i) = "--json" then Some Sys.argv.(i + 1)
      else go (i + 1)
    in
    go 1
  in
  if micro_mode then micro ()
  else begin
    let requested =
      List.filter (fun (n, _) -> Array.exists (String.equal n) Sys.argv) experiments
    in
    let to_run = if requested = [] then experiments else requested in
    print_endline "schemas_types experiment harness (tables E1-E20; see EXPERIMENTS.md)";
    List.iter (fun (_, f) -> f ()) to_run;
    print_newline ()
  end;
  match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out_bin path in
      output_string oc
        (Json.Printer.to_string_pretty
           (Json.Value.Array (List.rev !json_records)));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %d bench records to %s\n"
        (List.length !json_records) path
